"""Tests for the transfer service: TransferManager + LoadTracker.

Covers the bit-identity guarantee (default config == legacy issue path),
admission control (per-pair and global caps, no cross-pair head-of-line
blocking), small-message coalescing, load accounting, and the re-routed
entry points (context.put, endpoints, MPI traffic).
"""

import pytest

from repro.runtime import (
    IDLE_SNAPSHOT,
    LoadSnapshot,
    LoadTracker,
    load_bucket,
)
from repro.sim import Engine, Tracer
from repro.topology import systems
from repro.ucx import TransportConfig, UCXContext
from repro.units import KiB, MiB


def make_ctx(topology=None, **kw):
    eng = Engine()
    ctx = UCXContext(eng, topology or systems.beluga(), **kw)
    return eng, ctx


class TestLoadBucket:
    def test_small_counts_exact(self):
        assert [load_bucket(i) for i in (0, 1, 2)] == [0, 1, 2]

    def test_powers_of_two_above_two(self):
        assert load_bucket(3) == 4
        assert load_bucket(4) == 4
        assert load_bucket(5) == 8
        assert load_bucket(9) == 16

    def test_capped(self):
        assert load_bucket(500) == 16

    def test_negative_clamps_to_zero(self):
        assert load_bucket(-3) == 0


class TestLoadTracker:
    def _plan(self, ctx, nbytes=8 * MiB):
        return ctx.planner.plan(0, 1, nbytes)

    def test_acquire_release_roundtrip(self):
        _, ctx = make_ctx()
        tracker = LoadTracker()
        plan = self._plan(ctx)
        hold = tracker.acquire(plan)
        assert not tracker.is_idle
        snap = tracker.snapshot()
        assert not snap.is_idle
        # every channel of every active hop is loaded by exactly this plan
        for a in plan.active_assignments:
            for hop in a.path.hops:
                for channel in hop:
                    assert tracker.flows_on(channel) >= 1
                    assert snap.flows_on(channel) >= 1
        tracker.release(hold)
        assert tracker.is_idle
        assert tracker.snapshot() is IDLE_SNAPSHOT

    def test_release_is_idempotent(self):
        _, ctx = make_ctx()
        tracker = LoadTracker()
        hold = tracker.acquire(self._plan(ctx))
        tracker.release(hold)
        tracker.release(hold)  # no-op, must not go negative
        assert tracker.is_idle
        assert tracker.releases == 1

    def test_overlapping_holds_stack(self):
        _, ctx = make_ctx()
        tracker = LoadTracker()
        plan = self._plan(ctx)
        h1, h2 = tracker.acquire(plan), tracker.acquire(plan)
        channel = plan.active_assignments[0].path.hops[0][0]
        assert tracker.flows_on(channel) == 2
        tracker.release(h1)
        assert tracker.flows_on(channel) == 1
        tracker.release(h2)
        assert tracker.is_idle
        assert tracker.peak_channel_flows >= 2

    def test_snapshot_is_frozen(self):
        _, ctx = make_ctx()
        tracker = LoadTracker()
        hold = tracker.acquire(self._plan(ctx))
        snap = tracker.snapshot()
        before = snap.bucket_key()
        tracker.release(hold)
        assert snap.bucket_key() == before  # not a live view

    def test_hop_load_uses_busiest_channel(self):
        snap = LoadSnapshot({"a": 1, "b": 5})
        assert snap.hop_load(("a", "b")) == load_bucket(5)
        assert snap.hop_load(("a",)) == 1
        assert snap.hop_load(("c",)) == 0

    def test_bucket_key_canonical(self):
        assert LoadSnapshot({"b": 3, "a": 1}).bucket_key() == (
            ("a", 1),
            ("b", 4),
        )
        # zero-flow channels are dropped: idle keys like load=None
        assert LoadSnapshot({"a": 0}).bucket_key() == ()


class TestBitIdentity:
    """Default config through the manager == legacy direct issue path."""

    @pytest.mark.parametrize("nbytes", [64 * KiB, 8 * MiB, 64 * MiB])
    def test_single_put_timeline_identical(self, nbytes):
        t_legacy, t_managed = Tracer(), Tracer()
        eng1, ctx1 = make_ctx(tracer=t_legacy)
        eng2, ctx2 = make_ctx(tracer=t_managed)
        r1 = eng1.run(until=ctx1.cuda_ipc.start_put(0, 1, nbytes, tag="t"))
        r2 = eng2.run(until=ctx2.put(0, 1, nbytes, tag="t"))
        assert r1 == r2  # PutResult is a frozen dataclass: field-exact
        assert eng1.now == eng2.now
        assert t_legacy.records == t_managed.records

    def test_window_of_puts_identical(self):
        t_legacy, t_managed = Tracer(), Tracer()
        eng1, ctx1 = make_ctx(tracer=t_legacy)
        eng2, ctx2 = make_ctx(tracer=t_managed)
        evs1 = [
            ctx1.cuda_ipc.start_put(0, 1, 4 * MiB, tag=f"w{i}") for i in range(4)
        ]
        evs2 = [ctx2.put(0, 1, 4 * MiB, tag=f"w{i}") for i in range(4)]
        eng1.run(until=eng1.all_of(evs1))
        eng2.run(until=eng2.all_of(evs2))
        assert eng1.now == eng2.now
        assert t_legacy.records == t_managed.records

    def test_contention_aware_idle_put_identical(self):
        """A lone put plans at idle load: awareness must change nothing."""
        cfg = TransportConfig(contention_aware=True)
        t_blind, t_aware = Tracer(), Tracer()
        eng1, ctx1 = make_ctx(tracer=t_blind)
        eng2, ctx2 = make_ctx(tracer=t_aware, config=cfg)
        r1 = eng1.run(until=ctx1.put(0, 1, 32 * MiB, tag="t"))
        r2 = eng2.run(until=ctx2.put(0, 1, 32 * MiB, tag="t"))
        assert r1 == r2
        assert t_blind.records == t_aware.records


class TestAdmissionControl:
    def test_per_pair_cap_serializes(self):
        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        evs = [ctx.put(0, 1, 4 * MiB, tag=f"s{i}") for i in range(3)]
        assert ctx.transfers.queue_depth == 2  # first admitted, rest queued
        eng.run(until=eng.all_of(evs))
        results = [e.value for e in evs]
        # strictly serialized: each put starts after the previous ended
        for prev, nxt in zip(results, results[1:]):
            assert nxt.start >= prev.end
        stats = ctx.transfers.stats_snapshot()
        assert stats["queue_depth"] == 0
        assert stats["completed"] == 3
        assert stats["peak_inflight"] == 1
        assert stats["peak_queue_depth"] == 2

    def test_serialized_pair_is_slower_than_concurrent(self):
        eng1, ctx1 = make_ctx()
        evs = [ctx1.put(0, 1, 16 * MiB, tag=f"c{i}") for i in range(3)]
        eng1.run(until=eng1.all_of(evs))
        concurrent = eng1.now
        cfg = TransportConfig(max_inflight_per_pair=1)
        eng2, ctx2 = make_ctx(config=cfg)
        evs = [ctx2.put(0, 1, 16 * MiB, tag=f"c{i}") for i in range(3)]
        eng2.run(until=eng2.all_of(evs))
        assert eng2.now > concurrent

    def test_blocked_pair_does_not_block_others(self):
        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        # two puts on (0,1): the second queues; (2,3) submitted after it
        # must still dispatch immediately.
        first = ctx.put(0, 1, 64 * MiB, tag="a0")
        second = ctx.put(0, 1, 64 * MiB, tag="a1")
        other = ctx.put(2, 3, 4 * MiB, tag="b0")
        eng.run(until=eng.all_of([first, second, other]))
        assert other.value.end < second.value.start

    def test_global_cap(self):
        cfg = TransportConfig(max_inflight_total=1)
        eng, ctx = make_ctx(config=cfg)
        evs = [
            ctx.put(0, 1, 4 * MiB, tag="g0"),
            ctx.put(2, 3, 4 * MiB, tag="g1"),
        ]
        assert ctx.transfers.inflight == 1
        assert ctx.transfers.queue_depth == 1
        eng.run(until=eng.all_of(evs))
        assert evs[1].value.start >= evs[0].value.end
        assert ctx.transfers.stats_snapshot()["peak_inflight"] == 1

    def test_failed_transfer_unblocks_queue(self):
        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        bad = ctx.put(0, 99, 4 * MiB, tag="bad")  # invalid device
        queued = ctx.put(0, 99, 4 * MiB, tag="q")
        with pytest.raises(Exception, match="out of range"):
            eng.run(until=eng.all_of([bad, queued]))
        assert not bad.ok
        stats = ctx.transfers.stats_snapshot()
        assert stats["failed"] >= 1
        assert stats["queue_depth"] == 0  # failure still pumps the queue

    def test_negative_size_rejected_at_submit(self):
        _, ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.put(0, 1, -1)

    def test_reconfigure_changes_admission_live(self):
        eng, ctx = make_ctx()
        assert ctx.transfers._can_admit(0, 1)
        ctx.reconfigure(TransportConfig(max_inflight_total=1))
        ev = ctx.put(0, 1, 4 * MiB, tag="x")
        assert not ctx.transfers._can_admit(2, 3)  # live config honoured
        eng.run(until=ev)


class TestCoalescing:
    def test_queued_small_messages_merge(self):
        cfg = TransportConfig(
            max_inflight_per_pair=1, coalesce_threshold=64 * KiB
        )
        eng, ctx = make_ctx(config=cfg)
        big = ctx.put(0, 1, 8 * MiB, tag="big")
        smalls = [ctx.put(0, 1, 16 * KiB, tag=f"s{i}") for i in range(4)]
        eng.run(until=eng.all_of([big, *smalls]))
        stats = ctx.transfers.stats_snapshot()
        assert stats["coalesced_requests"] == 3  # head + 3 merged members
        assert stats["coalesced_bytes"] == 3 * 16 * KiB
        # each member still resolves with its own size and shared timing
        for ev in smalls:
            assert ev.value.nbytes == 16 * KiB
        assert len({(e.value.start, e.value.end) for e in smalls}) == 1
        # only two actual dispatches hit the transport: big + merged group
        assert ctx.cuda_ipc.puts_issued == 2

    def test_large_queued_message_not_coalesced(self):
        cfg = TransportConfig(
            max_inflight_per_pair=1, coalesce_threshold=64 * KiB
        )
        eng, ctx = make_ctx(config=cfg)
        evs = [
            ctx.put(0, 1, 8 * MiB, tag="head"),  # dispatches; rest queue
            ctx.put(0, 1, 16 * KiB, tag="s0"),
            ctx.put(0, 1, 16 * KiB, tag="s1"),
            ctx.put(0, 1, 8 * MiB, tag="L"),  # above threshold: barrier
            ctx.put(0, 1, 16 * KiB, tag="s2"),
        ]
        eng.run(until=eng.all_of(evs))
        # s1 merged into s0's dispatch; the large message stops the scan so
        # s2 dispatches on its own (pair FIFO preserved).
        assert ctx.transfers.coalesced_requests == 1
        assert evs[3].value.start >= evs[2].value.end  # L after s0+s1
        assert evs[4].value.start >= evs[3].value.end  # s2 after L

    def test_coalescing_off_by_default(self):
        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        evs = [ctx.put(0, 1, 16 * KiB, tag=f"s{i}") for i in range(3)]
        eng.run(until=eng.all_of(evs))
        assert ctx.transfers.coalesced_requests == 0
        assert ctx.cuda_ipc.puts_issued == 3


class TestEntryPoints:
    def test_context_put_routes_through_manager(self):
        eng, ctx = make_ctx()
        eng.run(until=ctx.put(0, 1, 4 * MiB))
        assert ctx.transfers.submitted == 1
        assert ctx.transfers.completed == 1

    def test_endpoint_routes_through_manager(self):
        eng, ctx = make_ctx()
        ep = ctx.endpoint(0, 1)
        eng.run(until=ep.put(4 * MiB))
        eng.run(until=ep.get(4 * MiB))
        assert ctx.transfers.submitted == 2

    def test_mpi_traffic_routes_through_manager(self):
        from repro.mpi.comm import Communicator

        eng, ctx = make_ctx()
        comm = Communicator(ctx)

        def program(view):
            if view.rank == 0:
                yield from view.send(1, nbytes=4 * MiB)
            elif view.rank == 1:
                yield from view.recv(0)

        eng.run(until=comm.run_ranks(program))
        assert ctx.transfers.submitted == 1
        assert ctx.transfers.completed == 1

    def test_load_settles_to_idle_after_traffic(self):
        eng, ctx = make_ctx()
        evs = [ctx.put(0, 1, 8 * MiB, tag=f"p{i}") for i in range(3)]
        eng.run(until=eng.all_of(evs))
        assert ctx.transfers.load.is_idle
        load = ctx.transfers.stats_snapshot()["load"]
        assert load["acquires"] == load["releases"] == 3
        assert load["inflight_flows"] == 0
        assert load["peak_channel_flows"] >= 1


class TestObservabilityWiring:
    def test_queue_metrics_and_spans(self):
        from repro.obs import Observability

        cfg = TransportConfig(max_inflight_per_pair=1)
        obs = Observability()
        eng, ctx = make_ctx(config=cfg, tracer=Tracer(), obs=obs)
        evs = [ctx.put(0, 1, 4 * MiB, tag=f"q{i}") for i in range(2)]
        eng.run(until=eng.all_of(evs))
        assert obs.metrics.counter("transfer_manager.queued").value == 1
        queue_spans = [s for s in obs.spans.spans if s.cat == "queue"]
        assert len(queue_spans) == 1
        (span,) = queue_spans
        assert span.end > span.start  # real time spent waiting
        snap = obs.metrics.snapshot()
        assert "queue_depth" in snap["transfer_manager"]

    def test_zero_byte_put_via_manager(self):
        eng, ctx = make_ctx()
        result = eng.run(until=ctx.put(0, 1, 0))
        assert result.nbytes == 0
        assert result.bandwidth == 0.0


class TestCancellation:
    """Satellite: queued transfers are cancellable and expirable without
    stranding siblings or leaking load accounting."""

    def test_cancel_queued_frees_slot_and_fails_event(self):
        from repro.gpu.errors import TransferCancelled

        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        first = ctx.put(0, 1, 4 * MiB, tag="a")
        victim = ctx.put(0, 1, 4 * MiB, tag="b")
        third = ctx.put(0, 1, 4 * MiB, tag="c")
        assert ctx.transfers.cancel(victim) is True
        assert victim.triggered and not victim.ok
        assert isinstance(victim._exception, TransferCancelled)
        eng.run(until=eng.all_of([first, third]))
        stats = ctx.transfers.stats_snapshot()
        assert stats["cancelled"] == 1
        assert stats["completed"] == 2
        assert stats["queue_depth"] == 0
        # the cancelled slot was freed: c ran right after a, not after b
        assert third.value.start >= first.value.end

    def test_cancel_dispatched_or_unknown_returns_false(self):
        eng, ctx = make_ctx()
        ev = ctx.put(0, 1, 4 * MiB, tag="d")  # dispatches immediately
        assert ctx.transfers.cancel(ev) is False
        eng.run(until=ev)
        assert ctx.transfers.cancel(ev) is False  # completed: still False
        assert ctx.transfers.cancelled == 0

    def test_expiry_in_coalesce_group_does_not_strand_siblings(self):
        from repro.gpu.errors import DeadlineUnsatisfiable

        cfg = TransportConfig(
            max_inflight_per_pair=1, coalesce_threshold=64 * KiB
        )
        eng, ctx = make_ctx(config=cfg)
        big = ctx.put(0, 1, 8 * MiB, tag="big")
        # A deadline generous enough to pass admission (predicted service
        # time fits) but far shorter than the big head transfer it queues
        # behind — so it expires in the queue, via the flush-hook sweep.
        short = 3 * ctx.planner.predict_time(0, 1, 16 * KiB)
        doomed = ctx.put(0, 1, 16 * KiB, tag="s0", timeout=short)
        siblings = [
            ctx.put(0, 1, 16 * KiB, tag=f"s{i}") for i in range(1, 4)
        ]
        eng.run()
        assert big.ok
        assert not doomed.ok
        assert isinstance(doomed._exception, DeadlineUnsatisfiable)
        for ev in siblings:
            assert ev.ok
            assert ev.value.nbytes == 16 * KiB
        stats = ctx.transfers.stats_snapshot()
        assert stats["expired"] == 1
        # big + one merged dispatch for the surviving siblings: the
        # expired member did not strand or split the coalesce group
        assert stats["completed"] == 2
        assert stats["coalesced_requests"] == 2
        assert stats["queue_depth"] == 0

    def test_load_idle_after_mass_cancellation(self):
        from repro.runtime import check_invariants

        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        head = ctx.put(0, 1, 4 * MiB, tag="head")
        queued = [ctx.put(0, 1, 4 * MiB, tag=f"q{i}") for i in range(5)]
        for ev in queued:
            assert ctx.transfers.cancel(ev) is True
        eng.run(until=head)
        eng.run()
        assert ctx.transfers.load.is_idle
        assert ctx.transfers.cancelled == 5
        report = check_invariants(ctx)
        assert report.ok

    def test_cancelled_bytes_ledger_balances(self):
        cfg = TransportConfig(max_inflight_per_pair=1)
        eng, ctx = make_ctx(config=cfg)
        ctx.put(0, 1, 4 * MiB, tag="h")
        victim = ctx.put(0, 1, 2 * MiB, tag="v")
        ctx.transfers.cancel(victim)
        eng.run()
        b = ctx.transfers.stats_snapshot()["bytes"]
        assert b["submitted"] == 6 * MiB
        assert b["delivered"] == 4 * MiB
        assert b["cancelled"] == 2 * MiB
        assert b["inflight"] == 0


class TestZeroBandwidthRegression:
    """Satellite: zero-duration/zero-byte transfers report 0.0, never inf."""

    def test_transfer_result_zero_duration(self):
        from repro.sim.link import TransferResult

        r = TransferResult(nbytes=0, start=1.0, end=1.0, tag="z")
        assert r.bandwidth == 0.0

    def test_transfer_result_zero_bytes_nonzero_duration(self):
        from repro.sim.link import TransferResult

        r = TransferResult(nbytes=0, start=0.0, end=1.0, tag="z")
        assert r.bandwidth == 0.0

    def test_put_result_zero_duration(self):
        from repro.ucx.cuda_ipc import PutResult

        r = PutResult(
            src=0, dst=1, nbytes=0, protocol="eager", mode="single",
            start=2.0, end=2.0,
        )
        assert r.bandwidth == 0.0

    def test_planner_predict_bandwidth_zero_bytes(self):
        _, ctx = make_ctx()
        bw = ctx.planner.predict_bandwidth(0, 1, 0)
        assert bw == 0.0  # zero bytes over positive predicted time

    def test_plan_zero_predicted_time_bandwidth(self):
        from repro.core.planner import TransferPlan

        plan = TransferPlan(
            src=0, dst=1, nbytes=4, assignments=(), predicted_time=0.0
        )
        assert plan.predicted_bandwidth == 0.0

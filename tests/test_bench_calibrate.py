"""Tests for parameter extraction (calibration)."""

import numpy as np
import pytest

from repro.bench.calibrate import (
    calibrate,
    calibrate_hop,
    calibrate_launch_overhead,
    fit_hockney,
)
from repro.bench.env import default_jitter_factory
from repro.core.params import ParameterStore
from repro.topology import systems
from repro.topology.routing import enumerate_paths
from repro.units import MiB, gbps, us


@pytest.fixture(scope="module")
def beluga_store():
    topo = systems.beluga()
    return topo, calibrate(topo)


class TestFitHockney:
    def test_exact_recovery(self):
        alpha, beta = 3 * us, gbps(20)
        sizes = np.array([1, 4, 16, 64]) * MiB
        times = alpha + sizes / beta
        est = fit_hockney(sizes, times)
        assert est.alpha == pytest.approx(alpha, rel=1e-6)
        assert est.beta == pytest.approx(beta, rel=1e-6)
        assert est.r_squared == pytest.approx(1.0)

    def test_noisy_fit_r_squared(self):
        rng = np.random.default_rng(0)
        sizes = np.linspace(1, 64, 20) * MiB
        times = 2 * us + sizes / gbps(10)
        times *= 1 + rng.normal(0, 0.02, times.size)
        est = fit_hockney(sizes, times)
        assert 0.9 < est.r_squared <= 1.0
        assert est.beta == pytest.approx(gbps(10), rel=0.1)

    def test_negative_intercept_clamped(self):
        sizes = np.array([1, 2]) * MiB
        times = sizes / gbps(10) - 1 * us  # slightly negative intercept
        est = fit_hockney(sizes, times)
        assert est.alpha == 0.0

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_hockney(np.array([1.0]), np.array([1.0]))

    def test_flat_times_rejected(self):
        with pytest.raises(ValueError, match="slope"):
            fit_hockney(np.array([1, 2, 3]) * MiB, np.array([5.0, 5.0, 5.0]) * us)


class TestCalibrationAccuracy:
    def test_noise_free_recovers_ground_truth(self, beluga_store):
        """Without jitter, calibration must recover the true (α, β, ε)."""
        topo, store = beluga_store
        truth = ParameterStore.ground_truth(topo)
        hop = topo.direct_hop(0, 1)
        est = store.link(hop)
        exact = truth.link(hop)
        assert est.alpha == pytest.approx(exact.alpha, rel=1e-6)
        assert est.beta == pytest.approx(exact.beta, rel=1e-6)
        assert store.epsilon("gpu") == pytest.approx(topo.sync.gpu, rel=1e-3)
        assert store.epsilon("host") == pytest.approx(topo.sync.host, rel=1e-3)

    def test_covers_every_path_hop(self, beluga_store):
        topo, store = beluga_store
        for src in range(topo.num_gpus):
            for dst in range(topo.num_gpus):
                if src == dst:
                    continue
                for path in enumerate_paths(topo, src, dst):
                    for hop in path.hops:
                        assert store.has_link(hop)

    def test_phi_set_for_staged_paths(self, beluga_store):
        _, store = beluga_store
        assert store.phi("gpu:2") > 0
        assert store.phi("host") > 0
        assert store.phi("gpu:2") != store.default_phi

    def test_launch_overhead_positive(self, beluga_store):
        _, store = beluga_store
        assert store.launch_overhead > 0

    def test_jittered_calibration_sees_lower_beta(self):
        """With the efficiency ramp, the fitted β dips below nominal and
        alpha absorbs part of the overhead."""
        topo = systems.beluga()
        jf = default_jitter_factory(0, 0.0)
        hop = topo.direct_hop(0, 1)
        est = calibrate_hop(topo, hop, jitter_factory=jf)
        assert est.beta <= topo.hop_beta(hop) * 1.001
        assert est.alpha >= topo.hop_alpha(hop)

    def test_narval_host_hop_slower_than_beluga(self):
        nar = systems.narval()
        bel = systems.beluga()
        est_n = calibrate_hop(nar, nar.host_hops(0, 1)[1])  # crosses UPI
        est_b = calibrate_hop(bel, bel.host_hops(0, 1)[1])
        assert est_n.alpha > est_b.alpha  # extra hop latency visible

    def test_calibrate_launch_overhead(self):
        topo = systems.beluga()
        overhead = calibrate_launch_overhead(topo)
        hop = topo.direct_hop(0, 1)
        assert overhead == pytest.approx(topo.hop_alpha(hop), rel=0.01)

    def test_store_json_roundtrip_after_calibration(self, beluga_store):
        _, store = beluga_store
        restored = ParameterStore.from_json(store.to_json())
        assert restored.phi("gpu:2") == store.phi("gpu:2")
        assert restored.launch_overhead == store.launch_overhead

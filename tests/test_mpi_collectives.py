"""Correctness tests for collectives vs numpy references, plus property
tests over random sizes/values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Communicator, collectives
from repro.sim import Engine
from repro.topology import systems
from repro.ucx import TransportConfig, UCXContext


def run_collective(fn, size=4, topology=None, config=None, seed=0):
    """Run `fn(view, data[rank])` on all ranks; returns (results, time).

    ``fn`` receives the view and must return the collective's result.
    """
    eng = Engine()
    ctx = UCXContext(eng, topology or systems.beluga(), config=config)
    comm = Communicator(ctx, size=size)
    results = {}

    def program(view):
        out = yield from fn(view)
        results[view.rank] = out

    eng.run(until=comm.run_ranks(program))
    return results, eng.now


def make_inputs(size, elems, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=elems) for _ in range(size)]


class TestAllreduce:
    @pytest.mark.parametrize("elems", [16, 1024, 4096])
    @pytest.mark.parametrize("algo", ["recursive", "ring", "auto"])
    def test_sum_matches_numpy(self, elems, algo):
        inputs = make_inputs(4, elems)
        expected = np.sum(inputs, axis=0)
        fns = {
            "recursive": collectives.allreduce_recursive,
            "ring": collectives.allreduce_ring,
            "auto": collectives.allreduce,
        }

        def fn(view):
            result = yield from fns[algo](view, inputs[view.rank])
            return result

        results, _ = run_collective(fn)
        for r in range(4):
            np.testing.assert_allclose(results[r], expected, rtol=1e-12)

    def test_max_op(self):
        inputs = make_inputs(4, 256)
        expected = np.maximum.reduce(inputs)

        def fn(view):
            result = yield from collectives.allreduce(
                view, inputs[view.rank], op=np.maximum
            )
            return result

        results, _ = run_collective(fn)
        for r in range(4):
            np.testing.assert_allclose(results[r], expected)

    def test_ring_handles_non_power_of_two(self):
        inputs = make_inputs(3, 300)
        expected = np.sum(inputs, axis=0)

        def fn(view):
            result = yield from collectives.allreduce(view, inputs[view.rank])
            return result

        results, _ = run_collective(fn, size=3)
        for r in range(3):
            np.testing.assert_allclose(results[r], expected, rtol=1e-12)

    def test_recursive_rejects_non_power_of_two(self):
        def fn(view):
            result = yield from collectives.allreduce_recursive(
                view, np.zeros(8)
            )
            return result

        with pytest.raises(ValueError, match="power-of-two"):
            run_collective(fn, size=3)

    def test_single_rank(self):
        def fn(view):
            result = yield from collectives.allreduce(view, np.arange(8.0))
            return result

        results, _ = run_collective(fn, size=1)
        np.testing.assert_array_equal(results[0], np.arange(8.0))

    def test_2d_rejected(self):
        def fn(view):
            result = yield from collectives.allreduce_ring(view, np.zeros((2, 2)))
            return result

        with pytest.raises(ValueError, match="1-D"):
            run_collective(fn)

    @given(
        elems=st.integers(min_value=4, max_value=2048),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_random_sizes(self, elems, seed):
        inputs = make_inputs(4, elems, seed)
        expected = np.sum(inputs, axis=0)

        def fn(view):
            result = yield from collectives.allreduce(view, inputs[view.rank])
            return result

        results, _ = run_collective(fn)
        for r in range(4):
            np.testing.assert_allclose(results[r], expected, rtol=1e-10)


class TestAlltoall:
    @pytest.mark.parametrize("algo", ["bruck", "pairwise", "auto"])
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_matches_reference(self, algo, size):
        elems = 64
        rng = np.random.default_rng(1)
        # matrix[src][dst] = block sent from src to dst
        matrix = [[rng.normal(size=elems) for _ in range(size)] for _ in range(size)]
        fns = {
            "bruck": collectives.alltoall_bruck,
            "pairwise": collectives.alltoall_pairwise,
            "auto": collectives.alltoall,
        }

        def fn(view):
            result = yield from fns[algo](view, matrix[view.rank])
            return result

        results, _ = run_collective(fn, size=size)
        for dst in range(size):
            for src in range(size):
                np.testing.assert_allclose(
                    results[dst][src], matrix[src][dst], rtol=1e-12
                )

    def test_block_validation(self):
        def fn(view):
            result = yield from collectives.alltoall(view, [np.zeros(4)] * 3)
            return result

        with pytest.raises(ValueError, match="blocks"):
            run_collective(fn, size=4)

    def test_nonuniform_blocks_rejected(self):
        def fn(view):
            blocks = [np.zeros(4), np.zeros(5), np.zeros(4), np.zeros(4)]
            result = yield from collectives.alltoall(view, blocks)
            return result

        with pytest.raises(ValueError, match="uniform"):
            run_collective(fn, size=4)

    def test_single_rank(self):
        def fn(view):
            result = yield from collectives.alltoall_bruck(view, [np.arange(4.0)])
            return result

        results, _ = run_collective(fn, size=1)
        np.testing.assert_array_equal(results[0][0], np.arange(4.0))


class TestAllgather:
    @pytest.mark.parametrize("algo", ["rd", "ring", "auto"])
    def test_matches_reference(self, algo):
        inputs = make_inputs(4, 128)
        fns = {
            "rd": collectives.allgather_recursive_doubling,
            "ring": collectives.allgather_ring,
            "auto": collectives.allgather,
        }

        def fn(view):
            result = yield from fns[algo](view, inputs[view.rank])
            return result

        results, _ = run_collective(fn)
        for r in range(4):
            for o in range(4):
                np.testing.assert_allclose(results[r][o], inputs[o])

    def test_ring_non_power_of_two(self):
        inputs = make_inputs(3, 50)

        def fn(view):
            result = yield from collectives.allgather(view, inputs[view.rank])
            return result

        results, _ = run_collective(fn, size=3)
        for r in range(3):
            for o in range(3):
                np.testing.assert_allclose(results[r][o], inputs[o])


class TestReduceScatter:
    def test_blocks_match_reference(self):
        inputs = make_inputs(4, 400)
        expected = np.sum(inputs, axis=0)

        def fn(view):
            block, bounds = yield from collectives.reduce_scatter_ring(
                view, inputs[view.rank]
            )
            return block, bounds

        results, _ = run_collective(fn)
        for r in range(4):
            block, (start, stop) = results[r]
            np.testing.assert_allclose(block, expected[start:stop], rtol=1e-12)

    def test_blocks_partition_vector(self):
        inputs = make_inputs(4, 403)  # non-divisible length

        def fn(view):
            block, bounds = yield from collectives.reduce_scatter_ring(
                view, inputs[view.rank]
            )
            return bounds

        results, _ = run_collective(fn)
        spans = sorted(results.values())
        assert spans[0][0] == 0
        assert spans[-1][1] == 403
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c


class TestBcast:
    @pytest.mark.parametrize("root", [0, 2])
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_all_ranks_receive(self, root, size):
        if root >= size:
            pytest.skip("root outside communicator")
        data = np.arange(100.0)

        def fn(view):
            result = yield from collectives.bcast_binomial(
                view, data if view.rank == root else None, root=root
            )
            return result

        results, _ = run_collective(fn, size=size)
        for r in range(size):
            np.testing.assert_array_equal(results[r], data)

    def test_bad_root(self):
        def fn(view):
            result = yield from collectives.bcast_binomial(view, None, root=9)
            return result

        with pytest.raises(ValueError):
            run_collective(fn)


class TestCollectiveTiming:
    def test_multipath_speeds_up_alltoall(self):
        elems = 1 << 21  # 2M doubles = 16 MiB per block
        blocks = [np.zeros(elems) for _ in range(4)]

        def fn(view):
            result = yield from collectives.alltoall(view, blocks)
            return result

        _, t_single = run_collective(fn, config=TransportConfig.single_path())
        _, t_multi = run_collective(
            fn, config=TransportConfig(include_host=False)
        )
        assert t_multi < t_single

    def test_allreduce_charges_compute(self):
        """Zero compute bandwidth config vs default: times differ."""
        elems = 1 << 20

        def fn(view):
            result = yield from collectives.allreduce(view, np.zeros(elems))
            return result

        eng = Engine()
        ctx = UCXContext(eng, systems.beluga())
        slow = Communicator(ctx, reduce_bandwidth=1e9)
        results = {}

        def program(view):
            out = yield from fn(view)
            results[view.rank] = out

        eng.run(until=slow.run_ranks(program))
        t_slow = eng.now

        _, t_fast = run_collective(fn)
        assert t_slow > t_fast

"""Tests for the observability layer: metrics, spans, decisions, exporters."""

import json

import pytest

from repro.bench.baselines import dynamic_config
from repro.bench.omb import osu_bw
from repro.bench.runner import dump_artifacts, get_setup
from repro.obs import (
    MetricsRegistry,
    Observability,
    SpanLog,
    chrome_trace,
    dump_chrome_trace,
)
from repro.obs.metrics import NULL_INSTRUMENT
from repro.core.planner import PathPlanner
from repro.sim.trace import Tracer
from repro.units import MiB


class TestMetricsRegistry:
    def test_counter_gauge_roundtrip(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(2)
        m.gauge("g").set(7)
        snap = m.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 7

    def test_instruments_are_interned(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.timer("t") is m.timer("t")

    def test_timer_observe_and_context(self):
        m = MetricsRegistry()
        t = m.timer("t")
        t.observe(0.5)
        with t.time():
            pass
        snap = t.snapshot()
        assert snap["count"] == 2
        assert snap["max_s"] >= 0.5

    def test_histogram_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("sizes")
        for v in (1, 2, 3, 1024):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1 and snap["max"] == 1024
        assert snap["buckets"]["2^10"] == 1

    def test_disabled_registry_is_inert(self):
        m = MetricsRegistry(enabled=False)
        c = m.counter("c")
        assert c is NULL_INSTRUMENT
        c.inc()
        m.register_collector("x", lambda: {"v": 1})
        assert m.snapshot() == {}

    def test_collectors_pull_at_snapshot_time(self):
        m = MetricsRegistry()
        state = {"v": 1}
        m.register_collector("comp", lambda: dict(state))
        state["v"] = 42
        assert m.snapshot()["comp"]["v"] == 42

    def test_to_json(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        assert json.loads(m.to_json())["counters"]["c"] == 1


class TestSpanLog:
    def test_record_and_query(self):
        s = SpanLog()
        s.record("a", "put", "t0", 0.0, 1.0, nbytes=10)
        s.record("b", "path", "t1", 0.5, 2.0)
        assert len(s) == 2
        assert s.for_cat("put")[0].name == "a"
        assert s.for_track("t1")[0].duration == pytest.approx(1.5)

    def test_disabled_records_nothing(self):
        s = SpanLog(enabled=False)
        s.record("a", "put", "t", 0, 1)
        assert len(s) == 0


class TestChromeTrace:
    def make_sources(self):
        tracer = Tracer()
        tracer.record("nvl:0->1", "x/direct", 0.0, 2e-3, 1024)
        tracer.record("nvl:0->2", "x/gpu:2:h1:0", 0.0, 1e-3, 512)
        spans = SpanLog()
        spans.record("put 0->1", "put", "put:0->1", 0.0, 2e-3, nbytes=1536)
        return tracer, spans

    def test_events_have_required_fields(self):
        tracer, spans = self.make_sources()
        trace = chrome_trace(tracer, spans)
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for e in complete:
            assert {"name", "cat", "pid", "tid", "ts", "dur"} <= set(e)
        # one thread-name metadata row per distinct channel/track
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {m["args"]["name"] for m in names} == {
            "nvl:0->1",
            "nvl:0->2",
            "put:0->1",
        }

    def test_sim_seconds_become_microseconds(self):
        tracer, _ = self.make_sources()
        events = chrome_trace(tracer)["traceEvents"]
        e = next(ev for ev in events if ev["ph"] == "X")
        assert e["ts"] == pytest.approx(0.0)
        assert e["dur"] == pytest.approx(2e3)  # 2 ms -> 2000 us

    def test_dump_is_loadable_json(self, tmp_path):
        tracer, spans = self.make_sources()
        path = dump_chrome_trace(tmp_path / "t.json", tracer, spans)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)
        assert loaded["traceEvents"]

    def test_empty_sources(self):
        assert chrome_trace()["traceEvents"] == []


class TestChromeTraceInvariants:
    """Export invariants on a real instrumented run (viewer correctness)."""

    @pytest.fixture(scope="class")
    def trace(self):
        setup = get_setup("beluga")
        env = setup.env(dynamic_config(), observe=True)
        osu_bw(env, 16 * MiB, window=2, iterations=2)
        ctx = env.last_context
        return chrome_trace(
            ctx.tracer, ctx.obs.spans, metadata={"system": "beluga"}
        )

    def test_complete_events_sorted_by_timestamp(self, trace):
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert ts == sorted(ts)
        assert len(ts) > 10

    def test_metadata_events_lead(self, trace):
        events = trace["traceEvents"]
        kinds = [e["ph"] for e in events]
        assert "M" not in kinds[kinds.index("X"):]

    def test_stable_pid_tid_mapping(self, trace):
        events = trace["traceEvents"]
        # pid 0 = fabric, pid 1 = transport; every X event's (pid, tid)
        # must be declared by exactly one thread_name metadata event.
        declared = {}
        for e in events:
            if e["ph"] == "M" and e["name"] == "thread_name":
                key = (e["pid"], e["tid"])
                assert key not in declared, f"duplicate row {key}"
                declared[key] = e["args"]["name"]
        for e in events:
            if e["ph"] == "X":
                key = (e["pid"], e["tid"])
                assert key in declared
                if e["pid"] == 0:  # fabric rows are named by channel
                    assert declared[key] == e["args"]["channel"]
        assert {pid for pid, _ in declared} == {0, 1}

    def test_json_roundtrip(self, trace):
        loaded = json.loads(json.dumps(trace))
        assert loaded == trace
        assert loaded["otherData"]["system"] == "beluga"


class TestHistogramQuantiles:
    def test_exact_below_reservoir_capacity(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):  # 1..100, fits the reservoir
            h.observe(v)
        assert h.quantile(0.5) == 50
        assert h.quantile(0.9) == 90
        assert h.quantile(0.0) == 1
        assert h.quantile(1.0) == 100
        snap = h.snapshot()
        assert snap["p50"] == 50 and snap["p90"] == 90 and snap["p99"] == 99

    def test_reservoir_is_bounded_and_deterministic(self):
        from repro.obs.metrics import Histogram

        a, b = Histogram("same"), Histogram("same")
        for v in range(10_000):
            a.observe(v)
            b.observe(v)
        assert len(a.reservoir) == a.reservoir_size == 256
        assert a.reservoir == b.reservoir  # seeded from the name
        # The sampled p50 lands near the true median.
        assert abs(a.quantile(0.5) - 5000) < 1500

    def test_empty_and_invalid(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_surface_in_stats_snapshot(self):
        setup = get_setup("beluga")
        env = setup.env(dynamic_config(), observe=True)
        osu_bw(env, 16 * MiB, window=2, iterations=1)
        snap = env.last_context.obs.metrics.snapshot()
        put_sizes = snap["histograms"]["cuda_ipc.put_nbytes"]
        assert put_sizes["p50"] == 16 * MiB
        assert put_sizes["p99"] == 16 * MiB


class TestPlannerDecisionLog:
    def test_decisions_recorded_with_cache_flags(self):
        setup = get_setup("beluga")
        obs = Observability()
        planner = PathPlanner(setup.topology, setup.store, obs=obs)
        planner.plan(0, 1, 64 * MiB)
        planner.plan(0, 1, 64 * MiB)
        assert len(obs.decisions) == 2
        cold, hot = obs.decisions.records
        assert not cold.cache_hit and hot.cache_hit
        assert cold.nbytes == 64 * MiB
        assert cold.path_ids == hot.path_ids
        assert sum(cold.thetas) == pytest.approx(1.0)
        assert obs.decisions.cache_hit_rate == pytest.approx(0.5)
        # metrics mirror the log
        counters = obs.metrics.snapshot()["counters"]
        assert counters["planner.plans"] == 2
        assert counters["planner.cache_hits"] == 1
        assert counters["planner.plans_computed"] == 1

    def test_jsonl_roundtrip(self):
        setup = get_setup("beluga")
        obs = Observability()
        planner = PathPlanner(setup.topology, setup.store, obs=obs)
        planner.plan(0, 1, 8 * MiB)
        lines = obs.decisions.to_jsonl().splitlines()
        rec = json.loads(lines[0])
        assert rec["src"] == 0 and rec["dst"] == 1
        assert rec["wall_time_s"] >= 0

    def test_planner_without_obs_logs_nothing(self):
        setup = get_setup("beluga")
        planner = PathPlanner(setup.topology, setup.store)
        plan = planner.plan(0, 1, 8 * MiB)
        assert plan.num_active_paths >= 1
        assert planner.obs is None


class TestDecisionLogRing:
    """The decision log is a bounded ring with exact running totals."""

    def _log_and_plan(self, capacity):
        from repro.obs.decision_log import PlannerDecisionLog

        setup = get_setup("beluga")
        planner = PathPlanner(setup.topology, setup.store)
        plan = planner.plan(0, 1, 8 * MiB)
        return PlannerDecisionLog(capacity=capacity), plan

    def test_default_capacity(self):
        from repro.obs.decision_log import DEFAULT_CAPACITY, PlannerDecisionLog

        log = PlannerDecisionLog()
        assert log.capacity == DEFAULT_CAPACITY == 10_000

    def test_eviction_counts_dropped(self):
        log, plan = self._log_and_plan(capacity=5)
        for _ in range(12):
            log.log_plan(plan, cache_hit=False, wall_time_s=1e-5)
        assert len(log) == 5  # ring never exceeds capacity
        assert log.dropped == 7
        assert log.total_decisions == 12
        # the retained window is the *most recent* decisions
        assert [r.seq for r in log.records] == [7, 8, 9, 10, 11]

    def test_totals_exact_after_eviction(self):
        log, plan = self._log_and_plan(capacity=3)
        for i in range(10):
            log.log_plan(plan, cache_hit=(i % 2 == 0), wall_time_s=0.5)
        assert log.cache_hits == 5  # hits from evicted entries still counted
        assert log.cache_hit_rate == pytest.approx(0.5)
        assert log.total_wall_time() == pytest.approx(5.0)
        s = log.summary()
        assert s["decisions"] == 10
        assert s["retained"] == 3
        assert s["dropped"] == 7
        assert s["cache_hits"] == 5

    def test_unbounded_when_capacity_none(self):
        log, plan = self._log_and_plan(capacity=None)
        for _ in range(50):
            log.log_plan(plan, cache_hit=False, wall_time_s=0.0)
        assert len(log) == 50
        assert log.dropped == 0

    def test_invalid_capacity_rejected(self):
        from repro.obs.decision_log import PlannerDecisionLog

        with pytest.raises(ValueError):
            PlannerDecisionLog(capacity=0)

    def test_load_bucket_field_serialized(self):
        log, plan = self._log_and_plan(capacity=5)
        log.log_plan(plan, cache_hit=False, wall_time_s=0.0, load_bucket=4)
        rec = json.loads(log.to_jsonl().splitlines()[-1])
        assert rec["load_bucket"] == 4

    def test_clear_resets_everything(self):
        log, plan = self._log_and_plan(capacity=2)
        for _ in range(5):
            log.log_plan(plan, cache_hit=True, wall_time_s=1.0)
        log.clear()
        assert len(log) == 0
        assert log.total_decisions == log.dropped == log.cache_hits == 0
        assert log.summary()["total_wall_time_s"] == 0.0

    def test_dropped_surfaces_in_context_collector(self):
        """The planner collector exposes the ring-buffer drop count."""
        setup = get_setup("beluga")
        env = setup.env(dynamic_config(), observe=True)
        _, ctx, _ = env.fresh()
        snap = ctx.obs.metrics.snapshot()
        planner_stats = snap["planner"]
        assert "dropped" in planner_stats
        assert planner_stats["dropped"] == 0


class TestInstrumentedRun:
    """Acceptance criteria: snapshot contents after an osu_bw run."""

    @pytest.fixture(scope="class")
    def run(self):
        setup = get_setup("beluga")
        env = setup.env(dynamic_config(), observe=True)
        result = osu_bw(env, 64 * MiB, window=2, iterations=2)
        return env.last_context, result

    def test_snapshot_core_counters(self, run):
        ctx, result = run
        snap = ctx.obs.metrics.snapshot()
        assert snap["planner"]["cache_hits"] > 0
        assert snap["fabric"]["flows_admitted"] > 0
        assert snap["counters"]["planner.cache_hits"] > 0
        assert snap["cuda_ipc"]["bytes_put"] >= result.bytes_moved
        assert snap["engine"]["events_processed"] > 0
        assert snap["mpi"]["messages_matched"] > 0

    def test_per_channel_bytes_match_tracer(self, run):
        ctx, _ = run
        channels = ctx.obs.metrics.snapshot()["fabric"]["channels"]
        for name, ch in channels.items():
            assert ch["completed_bytes"] == pytest.approx(
                ctx.tracer.total_bytes(name)
            ), name
        total = sum(ch["completed_bytes"] for ch in channels.values())
        assert total == pytest.approx(ctx.tracer.total_bytes())

    def test_spans_cover_puts_and_paths(self, run):
        ctx, _ = run
        assert ctx.obs.spans.for_cat("put")
        assert ctx.obs.spans.for_cat("path")
        put = ctx.obs.spans.for_cat("put")[0]
        assert put.duration > 0
        assert put.args["nbytes"] > 0

    def test_chrome_trace_exports_run(self, run):
        ctx, _ = run
        events = chrome_trace(ctx.tracer, ctx.obs.spans)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)

    def test_dump_artifacts(self, run, tmp_path):
        ctx, _ = run
        written = dump_artifacts(tmp_path / "osu_bw", ctx)
        names = {p.name for p in written}
        assert names == {
            "osu_bw.metrics.json",
            "osu_bw.trace.json",
            "osu_bw.decisions.jsonl",
        }
        for p in written:
            assert p.exists() and p.stat().st_size > 0
        metrics = json.loads((tmp_path / "osu_bw.metrics.json").read_text())
        assert metrics["fabric"]["flows_admitted"] > 0

    def test_uninstrumented_env_has_no_obs(self):
        setup = get_setup("beluga")
        env = setup.env(dynamic_config())
        osu_bw(env, 4 * MiB, window=1, iterations=1)
        ctx = env.last_context
        assert ctx.obs is None
        assert ctx.planner.obs is None


class TestCliSubcommands:
    def test_stats_command_prints_json(self, capsys):
        from repro.cli import main

        main(["stats", "--system", "beluga", "--quick", "--size", "16M"])
        out = capsys.readouterr().out
        snap = json.loads(out)
        assert snap["planner"]["cache_hits"] > 0
        assert snap["run"]["system"] == "beluga"

    def test_trace_command_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "trace.json"
        main(
            [
                "trace",
                "--system",
                "beluga",
                "--quick",
                "--size",
                "16M",
                "-o",
                str(out_file),
            ]
        )
        trace = json.loads(out_file.read_text())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert {"pid", "tid", "ts", "dur"} <= set(e)

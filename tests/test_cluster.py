"""Tests for the multi-node multi-rail extension."""

import pytest

from repro.core.contention import max_min_path_rates, usage_matrix
from repro.core.planner import PathPlanner
from repro.sim import Engine
from repro.topology import systems
from repro.topology.cluster import ClusterTopology, execute_plan_on_fabric
from repro.topology.links import LinkKind, LinkSpec
from repro.units import MiB, gbps, us

RAIL = LinkSpec(LinkKind.PCIE4, alpha=1.5 * us, beta=gbps(12.0))


@pytest.fixture(scope="module")
def cluster():
    return ClusterTopology(
        systems.narval, num_nodes=2, num_rails=2, rail_spec=RAIL
    )


@pytest.fixture(scope="module")
def cluster_planner(cluster):
    return PathPlanner(cluster.nodes[0], cluster.ground_truth_store())


class TestClusterTopology:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(systems.beluga, num_nodes=1)
        with pytest.raises(ValueError):
            ClusterTopology(systems.beluga, num_rails=0)

    def test_channel_namespace(self, cluster):
        assert "n0:nvl:0->1" in cluster.channels
        assert "n1:rail1:down" in cluster.channels

    def test_rail_paths_enumeration(self, cluster):
        paths = cluster.inter_node_paths(0, 0, 1, 2)
        assert [p.path_id for p in paths] == ["rail:0", "rail:1", "host"]
        rail0 = paths[0]
        assert rail0.hops[0] == (
            "n0:pcie:0:d2h", "n0:rail0:up", "n1:rail0:down", "n1:pcie:2:h2d",
        )

    def test_same_node_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.inter_node_paths(0, 0, 0, 1)

    def test_rail_hop_beta_is_wire_bound(self, cluster):
        hop = cluster.rail_hop(0, 0, 1, 0, 0)
        # min(PCIe4 22, rail 12) = 12
        assert cluster.hop_beta(hop) == pytest.approx(gbps(12.0))

    def test_ground_truth_store_covers_paths(self, cluster):
        store = cluster.ground_truth_store()
        for path in cluster.inter_node_paths(0, 3, 1, 1):
            for hop in path.hops:
                assert store.has_link(hop)


class TestMultiRailPlanning:
    def test_rails_split_evenly(self, cluster, cluster_planner):
        paths = cluster.inter_node_paths(0, 0, 1, 0, include_host_staged=False)
        plan = cluster_planner.plan_for_paths(0, 4, 256 * MiB, paths)
        thetas = [a.theta for a in plan.assignments]
        assert thetas[0] == pytest.approx(thetas[1], rel=1e-3)
        assert sum(a.nbytes for a in plan.assignments) == 256 * MiB

    def test_two_rails_beat_one_in_simulation(self, cluster, cluster_planner):
        n = 256 * MiB
        paths = cluster.inter_node_paths(0, 0, 1, 0, include_host_staged=False)

        def run(path_subset):
            engine = Engine()
            fabric = cluster.build_fabric(engine)
            plan = cluster_planner.plan_for_paths(0, 4, n, path_subset)
            engine.run(until=execute_plan_on_fabric(fabric, plan))
            return engine.now

        t_one = run(paths[:1])
        t_two = run(paths)
        # Two 12 GB/s rails behind one 22 GB/s PCIe: ~1.8x, not 2x.
        assert 1.5 < t_one / t_two < 2.0

    def test_pcie_caps_the_rail_aggregate(self, cluster):
        """Contention machinery sees the shared source PCIe lanes."""
        paths = cluster.inter_node_paths(0, 0, 1, 0, include_host_staged=False)
        channels, u = usage_matrix(paths)
        caps = [cluster.channels[c].beta for c in channels]
        rates, _ = max_min_path_rates(caps, u)
        assert sum(rates) == pytest.approx(gbps(22.0), rel=1e-6)

    def test_naive_model_overshoots_shared_pcie(self, cluster, cluster_planner):
        """Eq. (8) treats the rails as independent (24 GB/s aggregate); the
        simulator respects the 22 GB/s PCIe — a known, documented limit of
        applying the intra-node model across rails."""
        n = 256 * MiB
        paths = cluster.inter_node_paths(0, 0, 1, 0, include_host_staged=False)
        plan = cluster_planner.plan_for_paths(0, 4, n, paths)
        engine = Engine()
        fabric = cluster.build_fabric(engine)
        engine.run(until=execute_plan_on_fabric(fabric, plan))
        measured_bw = n / engine.now
        assert plan.predicted_bandwidth > measured_bw
        assert plan.predicted_bandwidth / measured_bw < 1.15

    def test_host_staged_fallback_plan(self, cluster, cluster_planner):
        """Without GPUDirect the host path is the only route; the plan and
        the executor both handle the staged 2-hop structure."""
        n = 32 * MiB
        paths = [cluster.inter_node_paths(0, 0, 1, 0)[-1]]
        assert paths[0].path_id == "host"
        plan = cluster_planner.plan_for_paths(0, 4, n, paths)
        engine = Engine()
        fabric = cluster.build_fabric(engine)
        engine.run(
            until=execute_plan_on_fabric(
                fabric, plan, epsilon=cluster.nodes[0].sync.host
            )
        )
        assert engine.now > 0
        assert n / engine.now < gbps(12.0)  # rail-bound, plus staging cost

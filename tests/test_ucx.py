"""Tests for the UCX-like transport: config, registry, pipeline, cuda_ipc."""

import pytest

from repro.core.params import ParameterStore
from repro.sim import Engine, Tracer
from repro.topology import systems
from repro.ucx import ModelRegistry, TransportConfig, UCXContext
from repro.ucx.pipeline import PipelineEngine
from repro.ucx.tuning import StaticShare
from repro.units import KiB, MiB, gbps


def make_ctx(topology=None, **kw):
    eng = Engine()
    ctx = UCXContext(eng, topology or systems.beluga(), **kw)
    return eng, ctx


class TestTransportConfig:
    def test_defaults(self):
        cfg = TransportConfig()
        assert cfg.multipath and cfg.include_host and cfg.pipelining

    def test_single_path_preset(self):
        cfg = TransportConfig.single_path()
        assert not cfg.multipath

    def test_with_update(self):
        cfg = TransportConfig().with_(max_chunks=8)
        assert cfg.max_chunks == 8

    def test_from_env(self):
        cfg = TransportConfig.from_env(
            {
                "UCX_MP_ENABLE": "y",
                "UCX_MP_INCLUDE_HOST": "n",
                "UCX_MP_EXCLUDE": "gpu:3, host",
                "UCX_MP_MAX_CHUNKS": "32",
                "UCX_RNDV_THRESH": "256K",
            }
        )
        assert cfg.multipath
        assert not cfg.include_host
        assert cfg.exclude_paths == ("gpu:3", "host")
        assert cfg.max_chunks == 32
        assert cfg.rndv_threshold == 256 * KiB

    def test_from_env_bad_flag(self):
        with pytest.raises(ValueError):
            TransportConfig.from_env({"UCX_MP_ENABLE": "maybe"})

    def test_static_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TransportConfig(static_shares=(StaticShare("direct", 0.5),))

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(rndv_threshold=-1)
        with pytest.raises(ValueError):
            TransportConfig(max_chunks=0)


class TestModelRegistry:
    def test_register_get(self):
        reg = ModelRegistry()
        store = ParameterStore.ground_truth(systems.beluga())
        reg.register("beluga", store)
        assert reg.get("beluga") is store
        assert "beluga" in reg

    def test_missing_raises(self):
        with pytest.raises(KeyError, match="calibrat"):
            ModelRegistry().get("nope")

    def test_persistence_roundtrip(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        store = ParameterStore.ground_truth(systems.narval())
        reg.register("narval", store)
        path = reg.save("narval")
        assert path.exists()
        fresh = ModelRegistry(tmp_path)
        assert "narval" in fresh
        assert fresh.names() == ["narval"]
        loaded = fresh.get("narval")
        hop = systems.narval().direct_hop(0, 1)
        assert loaded.link(hop).beta == store.link(hop).beta

    def test_save_without_directory(self):
        reg = ModelRegistry()
        reg.register("x", ParameterStore())
        with pytest.raises(ValueError):
            reg.save("x")


class TestPipelineEngine:
    def test_direct_only_plan_matches_link_time(self):
        eng, ctx = make_ctx()
        plan = ctx.planner.plan(0, 1, 46 * MiB, max_gpu_staged=0, include_host=False)
        t0 = eng.now
        results = eng.run(until=ctx.pipeline.execute(plan))
        hop = ctx.topology.direct_hop(0, 1)
        expected = ctx.topology.hop_alpha(hop) + 46 * MiB / gbps(46)
        assert eng.now - t0 == pytest.approx(expected, rel=1e-9)
        assert results[0].path_id == "direct"

    def test_multipath_beats_direct(self):
        eng1, ctx1 = make_ctx()
        plan_multi = ctx1.planner.plan(0, 1, 256 * MiB, include_host=False)
        eng1.run(until=ctx1.pipeline.execute(plan_multi))
        t_multi = eng1.now

        eng2, ctx2 = make_ctx()
        plan_direct = ctx2.planner.plan(
            0, 1, 256 * MiB, max_gpu_staged=0, include_host=False
        )
        eng2.run(until=ctx2.pipeline.execute(plan_direct))
        t_direct = eng2.now
        assert t_multi < t_direct
        # three near-equal NVLink paths: expect >2x
        assert t_direct / t_multi > 2.0

    def test_staged_pipelining_overlaps_hops(self):
        """Chunk c+1's first hop must overlap chunk c's second hop."""
        eng = Engine()
        tracer = Tracer()
        ctx = UCXContext(eng, systems.beluga(), tracer=tracer)
        plan = ctx.planner.plan(0, 1, 256 * MiB, include_host=False)
        staged = plan.assignment_for("gpu:2")
        assert staged.chunks >= 2
        eng.run(until=ctx.pipeline.execute(plan, tag="T"))
        h1 = sorted(tracer.for_tag_prefix("T/gpu:2:h1"), key=lambda r: r.start)
        h2 = sorted(tracer.for_tag_prefix("T/gpu:2:h2"), key=lambda r: r.start)
        assert len(h1) == staged.chunks and len(h2) == staged.chunks
        # Overlap between h1 of chunk 1 and h2 of chunk 0:
        assert tracer.overlap(h1[1], h2[0]) > 0

    def test_chunk_sizes_split(self):
        assert PipelineEngine._chunk_sizes(10, 3) == [4, 3, 3]
        assert PipelineEngine._chunk_sizes(9, 3) == [3, 3, 3]
        assert PipelineEngine._chunk_sizes(2, 5) == [1, 1]
        with pytest.raises(ValueError):
            PipelineEngine._chunk_sizes(0, 4)
        with pytest.raises(ValueError):
            PipelineEngine._chunk_sizes(-1, 2)

    def test_all_bytes_delivered(self):
        eng = Engine()
        tracer = Tracer()
        ctx = UCXContext(eng, systems.beluga(), tracer=tracer)
        n = 64 * MiB
        plan = ctx.planner.plan(0, 1, n)
        eng.run(until=ctx.pipeline.execute(plan, tag="X"))
        # bytes over final hops (direct + h2 of each staged path) == n
        delivered = sum(
            r.nbytes
            for r in tracer.records
            if ":direct" in r.tag or ":h2:" in r.tag
        )
        assert delivered == n

    def test_stream_pool_reuse(self):
        eng, ctx = make_ctx()
        plan = ctx.planner.plan(0, 1, 8 * MiB, include_host=False)
        eng.run(until=ctx.pipeline.execute(plan))
        first_pool = dict(ctx.pipeline._stream_pool)
        assert first_pool  # the run actually pooled streams
        created = ctx.runtime._stream_count
        eng.run(until=ctx.pipeline.execute(plan))
        second_pool = ctx.pipeline._stream_pool
        # Back-to-back execute() calls reuse the *same* Stream objects —
        # identical keys mapped to identical instances, no new streams made.
        assert set(second_pool) == set(first_pool)
        for key, stream in first_pool.items():
            assert second_pool[key] is stream
        assert ctx.runtime._stream_count == created

    def test_empty_plan(self):
        eng, ctx = make_ctx()
        plan = ctx.planner.plan(0, 1, 0)
        done = ctx.pipeline.execute(plan)
        assert eng.run(until=done) == []


class TestCudaIpcPut:
    def test_eager_small_message(self):
        eng, ctx = make_ctx()
        result = eng.run(until=ctx.put(0, 1, 4 * KiB))
        assert result.protocol == "eager"
        assert result.mode == "single"
        assert result.duration > 0

    def test_rndv_large_message_dynamic(self):
        eng, ctx = make_ctx()
        result = eng.run(until=ctx.put(0, 1, 64 * MiB))
        assert result.protocol == "rndv"
        assert result.mode == "dynamic"

    def test_single_path_config(self):
        eng, ctx = make_ctx(config=TransportConfig.single_path())
        result = eng.run(until=ctx.put(0, 1, 64 * MiB))
        assert result.mode == "single"

    def test_static_shares(self):
        cfg = TransportConfig(
            static_shares=(
                StaticShare("direct", 0.5),
                StaticShare("gpu:2", 0.5, chunks=4),
            )
        )
        eng, ctx = make_ctx(config=cfg)
        result = eng.run(until=ctx.put(0, 1, 64 * MiB))
        assert result.mode == "static"

    def test_static_share_gpu_roles_resolved_per_pair(self):
        """gpu:* shares bind to the pair's staged candidates by role, so a
        distribution tuned on (0,1) applies to any pair."""
        cfg = TransportConfig(
            static_shares=(StaticShare("direct", 0.5), StaticShare("gpu:9", 0.5))
        )
        eng, ctx = make_ctx(config=cfg)
        result = eng.run(until=ctx.put(3, 0, 64 * MiB))
        assert result.mode == "static"

    def test_static_share_unknown_kind_rejected(self):
        cfg = TransportConfig(static_shares=(StaticShare("weird", 1.0),))
        eng, ctx = make_ctx(config=cfg)
        with pytest.raises(KeyError):
            eng.run(until=ctx.put(0, 1, 64 * MiB))

    def test_static_share_too_many_staged_rejected(self):
        cfg = TransportConfig(
            static_shares=tuple(
                StaticShare(f"gpu:{i}", 1.0 / 3) for i in range(3)
            )
        )
        eng, ctx = make_ctx(config=cfg)
        with pytest.raises(KeyError, match="no staged"):
            eng.run(until=ctx.put(0, 1, 64 * MiB))

    def test_multipath_put_faster_than_single(self):
        n = 256 * MiB
        eng1, ctx1 = make_ctx(config=TransportConfig(include_host=False))
        r_multi = eng1.run(until=ctx1.put(0, 1, n))
        eng2, ctx2 = make_ctx(config=TransportConfig.single_path())
        r_single = eng2.run(until=ctx2.put(0, 1, n))
        assert r_multi.duration < r_single.duration

    def test_pcie_only_falls_back_to_host_path(self):
        eng, ctx = make_ctx(topology=systems.pcie_only())
        result = eng.run(until=ctx.put(0, 1, 16 * MiB))
        assert result.duration > 0

    def test_negative_size_rejected(self):
        _, ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.put(0, 1, -5)

    def test_zero_byte_put_completes_immediately(self):
        eng, ctx = make_ctx(tracer=Tracer())
        result = eng.run(until=ctx.put(0, 1, 0))
        assert result.nbytes == 0
        assert result.duration == 0.0
        assert result.bandwidth == 0.0  # documented: 0.0, not a ZeroDivision
        assert result.protocol == "eager" and result.mode == "single"
        assert ctx.tracer.records == []  # nothing touched the fabric
        assert ctx.cuda_ipc.puts_completed == 1

    def test_ipc_cache_warm_after_first_put(self):
        eng, ctx = make_ctx()
        eng.run(until=ctx.put(0, 1, 1 * MiB))
        hits_before = ctx.runtime.ipc.cache.hits
        eng.run(until=ctx.put(0, 1, 1 * MiB))
        assert ctx.runtime.ipc.cache.hits == hits_before + 1


class TestEndpoint:
    def test_put_get_directions(self):
        eng, ctx = make_ctx()
        ep = ctx.endpoint(0, 1)
        r = eng.run(until=ep.put(8 * MiB))
        assert (r.src, r.dst) == (0, 1)
        r = eng.run(until=ep.get(8 * MiB))
        assert (r.src, r.dst) == (1, 0)

    def test_endpoint_cached(self):
        _, ctx = make_ctx()
        assert ctx.endpoint(0, 1) is ctx.endpoint(0, 1)
        assert ctx.endpoint(0, 1) is not ctx.endpoint(1, 0)

    def test_same_device_rejected(self):
        _, ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.endpoint(2, 2)

    def test_counters(self):
        eng, ctx = make_ctx()
        ep = ctx.endpoint(0, 1)
        eng.run(until=ep.put(4 * MiB))
        assert ep.puts == 1 and ep.bytes_put == 4 * MiB


class TestReconfigure:
    def test_reconfigure_swaps_planner(self):
        eng, ctx = make_ctx()
        old_planner = ctx.planner
        ctx.reconfigure(TransportConfig(pipelining=False))
        assert ctx.planner is not old_planner
        assert not ctx.planner.pipelining

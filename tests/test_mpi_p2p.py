"""Tests for the MPI layer: matching, requests, barriers."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Communicator, waitall
from repro.sim import Engine
from repro.topology import systems
from repro.ucx import TransportConfig, UCXContext
from repro.units import MiB


def make_comm(topology=None, size=None, **ctx_kw):
    eng = Engine()
    ctx = UCXContext(eng, topology or systems.beluga(), **ctx_kw)
    return eng, Communicator(ctx, size=size)


class TestBasicSendRecv:
    def test_payload_delivery(self):
        eng, comm = make_comm()
        data = np.arange(1024, dtype=np.float64)
        out = {}

        def program(view):
            if view.rank == 0:
                yield from view.send(1, payload=data, tag=7)
            elif view.rank == 1:
                out["got"] = yield from view.recv(0, tag=7)
            else:
                yield from view.barrier()
                return
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        np.testing.assert_array_equal(out["got"], data)

    def test_payload_is_copied(self):
        eng, comm = make_comm()
        data = np.zeros(16)
        out = {}

        def program(view):
            if view.rank == 0:
                req = view.isend(1, payload=data, tag=0)
                data[:] = 99.0  # mutate after isend: receiver must not see it
                yield req.event
            elif view.rank == 1:
                out["got"] = yield from view.recv(0)
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        assert np.all(out["got"] == 0.0)

    def test_size_only_messages(self):
        eng, comm = make_comm()

        def program(view):
            if view.rank == 0:
                yield from view.send(1, nbytes=8 * MiB)
            elif view.rank == 1:
                got = yield from view.recv(0)
                assert got is None
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        assert comm.bytes_transferred == 8 * MiB

    def test_transfer_takes_time(self):
        eng, comm = make_comm()

        def program(view):
            if view.rank == 0:
                yield from view.send(1, nbytes=64 * MiB)
            elif view.rank == 1:
                yield from view.recv(0)
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        # 64 MiB over <=138 GB/s aggregate: at least ~0.4ms
        assert eng.now > 100e-6


class TestMatching:
    def test_tag_matching(self):
        eng, comm = make_comm()
        order = []

        def program(view):
            if view.rank == 0:
                # isend both: sends complete in rendezvous order chosen by
                # the receiver, so blocking sends here would deadlock.
                r1 = view.isend(1, payload=np.array([1.0]), tag=10)
                r2 = view.isend(1, payload=np.array([2.0]), tag=20)
                yield waitall(view.engine, [r1, r2])
            elif view.rank == 1:
                # Receive tag 20 first even though tag 10 was sent first.
                got20 = yield from view.recv(0, tag=20)
                got10 = yield from view.recv(0, tag=10)
                order.extend([got20[0], got10[0]])
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        assert order == [2.0, 1.0]

    def test_any_source_any_tag(self):
        eng, comm = make_comm()
        got = []

        def program(view):
            if view.rank in (0, 2):
                yield from view.send(1, payload=np.array([float(view.rank)]), tag=view.rank)
            elif view.rank == 1:
                a = yield from view.recv(ANY_SOURCE, tag=ANY_TAG)
                b = yield from view.recv(ANY_SOURCE, tag=ANY_TAG)
                got.extend(sorted([a[0], b[0]]))
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        assert got == [0.0, 2.0]

    def test_fifo_order_same_tag(self):
        eng, comm = make_comm()
        got = []

        def program(view):
            if view.rank == 0:
                for i in range(3):
                    yield from view.send(1, payload=np.array([float(i)]), tag=5)
            elif view.rank == 1:
                for _ in range(3):
                    v = yield from view.recv(0, tag=5)
                    got.append(v[0])
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        assert got == [0.0, 1.0, 2.0]

    def test_unmatched_counts(self):
        eng, comm = make_comm()
        view = comm.view(0)
        view.isend(1, nbytes=4, tag=1)
        assert comm.unmatched == (1, 0)
        comm.view(1).irecv(0, tag=1)
        eng.run()
        assert comm.unmatched == (0, 0)


class TestNonBlocking:
    def test_isend_irecv_waitall(self):
        eng, comm = make_comm()
        results = {}

        def program(view):
            if view.rank == 0:
                reqs = [
                    view.isend(1, payload=np.array([i], dtype=np.int64), tag=i)
                    for i in range(4)
                ]
                yield waitall(view.engine, reqs)
            elif view.rank == 1:
                reqs = [view.irecv(0, tag=i) for i in range(4)]
                values = yield waitall(view.engine, reqs)
                results["values"] = [v[0] for v in values]
            yield from view.barrier()

        eng.run(until=comm.run_ranks(program))
        assert results["values"] == [0, 1, 2, 3]

    def test_request_test(self):
        eng, comm = make_comm()
        req = comm.view(1).irecv(0, tag=3)
        done, _ = req.test()
        assert not done
        comm.view(0).isend(1, nbytes=4, tag=3)
        eng.run()
        done, _ = req.test()
        assert done

    def test_sendrecv_bidirectional(self):
        eng, comm = make_comm()
        out = {}

        def program(view):
            if view.rank > 1:
                return
                yield
            peer = 1 - view.rank
            got = yield from view.sendrecv(
                peer, peer, payload=np.array([view.rank * 1.0]), tag=2
            )
            out[view.rank] = got[0]

        eng.run(until=comm.run_ranks(program))
        assert out == {0: 1.0, 1: 0.0}


class TestBarrier:
    def test_barrier_releases_all_at_once(self):
        eng, comm = make_comm()
        times = {}

        def program(view):
            yield view.engine.timeout(view.rank * 1.0)  # stagger arrivals
            yield from view.barrier()
            times[view.rank] = view.engine.now

        eng.run(until=comm.run_ranks(program))
        assert len(set(times.values())) == 1
        assert list(times.values())[0] == pytest.approx(3.0)

    def test_barrier_reusable(self):
        eng, comm = make_comm()
        log = []

        def program(view):
            yield from view.barrier()
            log.append(("a", view.rank))
            yield from view.barrier()
            log.append(("b", view.rank))

        eng.run(until=comm.run_ranks(program))
        assert [x[0] for x in log[:4]] == ["a"] * 4
        assert [x[0] for x in log[4:]] == ["b"] * 4


class TestValidation:
    def test_bad_rank(self):
        _, comm = make_comm()
        with pytest.raises(ValueError):
            comm.view(9)
        with pytest.raises(ValueError):
            comm.view(0).isend(99, nbytes=4)
        with pytest.raises(ValueError):
            comm.view(0).irecv(42)

    def test_payload_nbytes_consistency(self):
        _, comm = make_comm()
        with pytest.raises(ValueError):
            comm.view(0).isend(1, nbytes=5, payload=np.zeros(4))
        with pytest.raises(ValueError):
            comm.view(0).isend(1)

    def test_oversubscribed_ranks_share_devices(self):
        eng, comm = make_comm(size=8)
        assert comm.rank_to_device == [0, 1, 2, 3, 0, 1, 2, 3]

        def program(view):
            # rank 0 -> rank 4 share device 0: local copy path
            if view.rank == 0:
                yield from view.send(4, payload=np.array([1.0]))
            elif view.rank == 4:
                got = yield from view.recv(0)
                assert got[0] == 1.0

        eng.run(until=comm.run_ranks(program))

    def test_reduce_bandwidth_validation(self):
        eng = Engine()
        ctx = UCXContext(eng, systems.beluga())
        with pytest.raises(ValueError):
            Communicator(ctx, reduce_bandwidth=0)


class TestMultipathEffect:
    def test_multipath_speeds_up_p2p(self):
        n = 256 * MiB

        def run(cfg):
            eng, comm = make_comm(config=cfg)

            def program(view):
                if view.rank == 0:
                    yield from view.send(1, nbytes=n)
                elif view.rank == 1:
                    yield from view.recv(0)
                yield from view.barrier()

            eng.run(until=comm.run_ranks(program))
            return eng.now

        t_single = run(TransportConfig.single_path())
        t_multi = run(TransportConfig(include_host=False))
        assert t_multi < t_single
        assert t_single / t_multi > 2.0

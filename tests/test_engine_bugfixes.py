"""Dedicated regression tests for the three ISSUE-6 engine bugfixes.

Each test fails on the pre-slab engine (tuple-heap ``step()``):

1. ``step`` advanced ``self.now`` to a popped entry's timestamp *before*
   checking ``event.cancelled``, so the final clock after ``run()`` could
   reflect a cancelled wakeup that never fired.
2. ``Process._step`` registered ``add_callback`` on a yielded event that
   was already cancelled — the callback can never fire, so the process
   deadlocked silently (and ``run()`` reported a bogus deadlock only if
   nothing else was queued).
3. ``peak_queued`` counted tombstoned heap entries, overstating the peak
   backlog after heavy ``cancel()`` traffic.
"""

import pytest

from repro.sim import Engine, SimError


class TestClockSkipsTombstones:
    def test_trailing_tombstone_does_not_set_final_clock(self):
        # The cancelled wakeup at t=3 is the last heap entry; popping it
        # must not move the clock past the last *live* event at t=1.
        eng = Engine()
        eng.call_at(1.0)
        eng.cancel(eng.call_at(3.0))
        eng.run()
        assert eng.now == 1.0
        assert eng.stats_snapshot()["now"] == 1.0

    def test_step_over_tombstone_keeps_clock(self):
        eng = Engine()
        eng.cancel(eng.call_at(2.0))
        live = eng.call_at(5.0)
        eng.step()  # consumes the tombstone only
        assert eng.now == 0.0
        assert not live.triggered
        eng.step()
        assert eng.now == 5.0 and live.triggered

    def test_interleaved_tombstones_invisible_to_timeline(self):
        eng = Engine()
        seen = []
        for t in (1.0, 2.0, 3.0, 4.0):
            ev = eng.call_at(t)
            if t in (2.0, 4.0):
                eng.cancel(ev)
            else:
                ev.add_callback(lambda _e: seen.append(eng.now))
        eng.run()
        assert seen == [1.0, 3.0]
        assert eng.now == 3.0  # not 4.0: that entry was a tombstone


class TestCancelledYieldFailsProcess:
    def test_yielding_cancelled_event_raises_descriptive_error(self):
        eng = Engine()
        doomed = eng.call_at(4.0)
        eng.cancel(doomed)

        def proc():
            yield eng.timeout(1.0)
            yield doomed  # would never resume: must fail, not hang

        with pytest.raises(SimError, match="cancelled event"):
            eng.run(until=eng.process(proc()))
        assert eng.now == 1.0

    def test_waiting_parent_sees_the_failure(self):
        eng = Engine()
        doomed = eng.call_at(4.0)
        eng.cancel(doomed)

        def child():
            yield doomed

        def parent():
            try:
                yield eng.process(child())
            except SimError as exc:
                return f"caught: {exc}"

        result = eng.run(until=eng.process(parent()))
        assert result.startswith("caught:")
        assert "cancelled event" in result

    def test_add_callback_on_cancelled_event_is_an_error(self):
        eng = Engine()
        ev = eng.call_at(1.0)
        eng.cancel(ev)
        with pytest.raises(SimError, match="cancelled"):
            ev.add_callback(lambda _e: None)

    def test_first_yield_already_cancelled(self):
        # The very first target a process waits on is cancelled: the
        # failure must surface at process start, not hang the run.
        eng = Engine()
        doomed = eng.call_at(2.0)
        eng.cancel(doomed)

        def proc():
            yield doomed

        with pytest.raises(SimError, match="cancelled event"):
            eng.run(until=eng.process(proc()))


class TestPeakQueuedCountsLiveOnly:
    def test_lazy_cancellation_does_not_inflate_peak(self):
        eng = Engine()
        # 10 live + 40 cancelled-in-place: stays below the compaction
        # threshold (64 tombstones), so the tombstones sit in the heap —
        # but the reported peak must only ever count live entries.
        live = [eng.call_at(100.0 + i) for i in range(10)]
        for i in range(40):
            eng.cancel(eng.call_at(1.0 + i))
        assert eng.queued == 50  # tombstones really are still queued
        # each churn event was live for an instant before its cancel, so
        # the true high-water mark is 10 + 1 — nowhere near the 50 heap
        # entries the tombstone-counting implementation reported
        assert eng.peak_queued == 11
        eng.run()
        assert all(ev.triggered for ev in live)
        assert eng.peak_queued == 11

    def test_peak_tracks_high_water_mark_of_live_entries(self):
        eng = Engine()
        first = eng.call_at(1.0)
        second = eng.call_at(2.0)
        assert eng.peak_queued == 2
        eng.cancel(second)
        third = eng.call_at(3.0)  # live again at 2: no new peak
        assert eng.peak_queued == 2
        eng.call_at(4.0)
        assert eng.peak_queued == 3
        eng.run()
        assert first.triggered and third.triggered

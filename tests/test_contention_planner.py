"""Load-aware planning: β/(1+load) derate + plan-cache key soundness.

Satellite coverage for the extended cache key
``(pair, size, include_host, max_gpu_staged, excluded-paths, load-bucket)``:
a plan computed at idle must never be served for a loaded snapshot (and
vice versa), and ``invalidate_path`` must purge entries across *all* load
buckets, not just the idle one.
"""

import pytest

from repro.core.planner import PathPlanner
from repro.runtime import IDLE_SNAPSHOT, LoadSnapshot, load_bucket
from repro.topology import systems
from repro.units import MiB


@pytest.fixture(scope="module")
def beluga():
    return systems.beluga()


def loaded_snapshot(planner, src=0, dst=1, nbytes=64 * MiB, flows=2):
    """A snapshot putting `flows` flows on every channel of the pair's plan."""
    plan = planner.plan(src, dst, nbytes, use_cache=False)
    counts = {}
    for a in plan.active_assignments:
        for hop in a.path.hops:
            for channel in hop:
                counts[channel] = flows
    return LoadSnapshot(counts)


class TestDerate:
    def test_loaded_plan_predicts_slower(self, beluga):
        planner = PathPlanner(beluga)
        idle = planner.plan(0, 1, 64 * MiB)
        load = loaded_snapshot(planner)
        loaded = planner.plan(0, 1, 64 * MiB, load=load)
        # every hop's β halves (load bucket 2 → /3 actually: 1+2)
        assert loaded.predicted_time > idle.predicted_time * 1.5

    def test_derate_scales_with_load(self, beluga):
        planner = PathPlanner(beluga)
        t1 = planner.plan(0, 1, 64 * MiB, load=loaded_snapshot(planner, flows=1))
        t2 = planner.plan(0, 1, 64 * MiB, load=loaded_snapshot(planner, flows=2))
        assert t2.predicted_time > t1.predicted_time

    def test_partial_load_shifts_split(self, beluga):
        """Loading only the direct channel moves bytes to staged paths."""
        planner = PathPlanner(beluga)
        idle = planner.plan(0, 1, 256 * MiB)
        direct = next(
            a for a in idle.active_assignments if a.path.path_id == "direct"
        )
        counts = {ch: 4 for hop in direct.path.hops for ch in hop}
        loaded = planner.plan(0, 1, 256 * MiB, load=LoadSnapshot(counts))
        ld = loaded.assignment_for("direct")
        assert ld is not None
        assert ld.nbytes < direct.nbytes  # congested path carries less

    def test_idle_snapshot_equivalent_to_none(self, beluga):
        planner = PathPlanner(beluga)
        a = planner.plan(0, 1, 64 * MiB)
        b = planner.plan(0, 1, 64 * MiB, load=IDLE_SNAPSHOT)
        c = planner.plan(0, 1, 64 * MiB, load=LoadSnapshot({}))
        # idle snapshots normalize to the plain key: b and c are cache hits
        assert b.from_cache and c.from_cache
        assert a.predicted_time == b.predicted_time == c.predicted_time

    def test_load_on_unrelated_channels_is_noop_split(self, beluga):
        planner = PathPlanner(beluga)
        idle = planner.plan(0, 1, 64 * MiB, use_cache=False)
        other = planner.plan(
            0, 1, 64 * MiB, use_cache=False, load=LoadSnapshot({"nosuch": 8})
        )
        assert other.predicted_time == pytest.approx(idle.predicted_time)


class TestCacheKeyWithLoad:
    def test_no_stale_idle_plan_under_load(self, beluga):
        planner = PathPlanner(beluga)
        idle = planner.plan(0, 1, 64 * MiB)  # populates idle-key entry
        load = loaded_snapshot(planner)
        loaded = planner.plan(0, 1, 64 * MiB, load=load)
        assert not loaded.from_cache  # must NOT reuse the idle plan
        assert loaded.predicted_time > idle.predicted_time

    def test_no_stale_loaded_plan_at_idle(self, beluga):
        planner = PathPlanner(beluga)
        load = loaded_snapshot(planner)
        planner.plan(0, 1, 64 * MiB, load=load)
        idle = planner.plan(0, 1, 64 * MiB)
        assert not idle.from_cache

    def test_same_bucket_key_hits_cache(self, beluga):
        planner = PathPlanner(beluga)
        load = loaded_snapshot(planner, flows=2)
        first = planner.plan(0, 1, 64 * MiB, load=load)
        # A *different* snapshot object with identical bucketed counts
        again = planner.plan(
            0, 1, 64 * MiB, load=LoadSnapshot(dict(load._flows))
        )
        assert not first.from_cache
        assert again.from_cache
        assert again.predicted_time == first.predicted_time

    def test_bucketing_collapses_nearby_loads(self, beluga):
        """Flows 3 and 4 share bucket 4: one cache entry serves both."""
        planner = PathPlanner(beluga)
        three = loaded_snapshot(planner, flows=3)
        four = loaded_snapshot(planner, flows=4)
        assert three.bucket_key() == four.bucket_key()
        a = planner.plan(0, 1, 64 * MiB, load=three)
        b = planner.plan(0, 1, 64 * MiB, load=four)
        assert b.from_cache and not a.from_cache

    def test_invalidate_path_purges_all_load_buckets(self, beluga):
        planner = PathPlanner(beluga)
        for flows in (0, 1, 2, 4):
            load = None if flows == 0 else loaded_snapshot(planner, flows=flows)
            planner.plan(0, 1, 64 * MiB, load=load)
        assert len(planner.cache) == 4
        removed = planner.invalidate_path(0, 1, "direct")
        assert removed == 4  # one entry per load bucket, all gone
        # nothing left to hit: both idle and loaded replan from scratch
        assert not planner.plan(0, 1, 64 * MiB).from_cache
        assert not planner.plan(
            0, 1, 64 * MiB, load=loaded_snapshot(planner, flows=2)
        ).from_cache

    def test_load_key_does_not_leak_across_sizes(self, beluga):
        planner = PathPlanner(beluga)
        load = loaded_snapshot(planner)
        planner.plan(0, 1, 64 * MiB, load=load)
        other = planner.plan(0, 1, 32 * MiB, load=load)
        assert not other.from_cache


class TestContentionMetrics:
    def test_loaded_plan_metrics(self, beluga):
        from repro.obs import Observability

        obs = Observability()
        planner = PathPlanner(beluga, obs=obs)
        load = loaded_snapshot(planner)
        planner.plan(0, 1, 64 * MiB, load=load)
        planner.plan(0, 1, 64 * MiB, load=load)  # cache hit
        m = obs.metrics
        assert m.counter("contention.loaded_plans").value == 2
        assert m.counter("contention.cache_hits").value == 1
        # last two decisions are the loaded plans (the helper's probe plan
        # logs an idle decision first)
        assert [d.load_bucket for d in list(obs.decisions.records)[-2:]] == [2, 2]

    def test_idle_plan_logs_zero_bucket(self, beluga):
        from repro.obs import Observability

        obs = Observability()
        planner = PathPlanner(beluga, obs=obs)
        planner.plan(0, 1, 64 * MiB)
        (decision,) = obs.decisions.records
        assert decision.load_bucket == 0
        assert obs.metrics.counter("contention.loaded_plans").value == 0


class TestPlanForPathsLoad:
    def test_plan_for_paths_accepts_load(self, beluga):
        from repro.topology.routing import enumerate_paths

        planner = PathPlanner(beluga)
        paths = enumerate_paths(beluga, 0, 1)
        idle = planner.plan_for_paths(0, 1, 64 * MiB, paths)
        counts = {
            ch: 4 for p in paths for hop in p.hops for ch in hop
        }
        loaded = planner.plan_for_paths(
            0, 1, 64 * MiB, paths, load=LoadSnapshot(counts)
        )
        assert loaded.predicted_time > idle.predicted_time

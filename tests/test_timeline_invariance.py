"""Randomized timeline-invariance certification for the slab-backed core.

A seeded scenario generator mixes the contention patterns the CONTEND
experiment stresses (``bench/experiments/contention.py``) with fault
schedules from :mod:`repro.sim.faults`, then replays the *same* scenario
on the incremental slab-backed solver and on the ``full_recompute=True``
reference path.  Every tracer record, the final clock, and the flow/byte
accounting must be bit-identical — the optimized core may only be faster,
never different.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import pytest

from repro.bench.experiments.contention import CONTENTION_PATTERNS
from repro.sim import Engine, Fabric, Tracer
from repro.sim.faults import (
    FaultSchedule,
    FlappingLink,
    LinkDown,
    StallInjector,
)
from repro.units import MiB, gbps


@dataclass(frozen=True)
class Scenario:
    """A fully materialized workload: identical inputs for both runs."""

    channels: tuple[tuple[str, float, float], ...]  # (name, alpha, beta)
    copies: tuple[tuple[float, tuple[str, ...], int, str], ...]
    faults: tuple[tuple, ...] = field(default=())  # ("down"|"stall"|"flap", ...)


def generate_scenario(seed: int) -> Scenario:
    """Draw one scenario; all randomness happens here, never during a run."""
    rng = random.Random(seed)
    nshared = rng.randint(3, 5)
    ndisjoint = rng.randint(2, 4)
    channels = [
        (f"g{i}", rng.choice([0.0, 1e-6, 2e-6]), gbps(rng.randint(5, 25)))
        for i in range(nshared)
    ] + [
        (f"pv{i}", 5e-7, gbps(rng.randint(15, 30)))
        for i in range(ndisjoint)
    ]

    copies: list[tuple[float, tuple[str, ...], int, str]] = []
    tag = 0
    # contention phases: each CONTEND pattern's (src, dst) pairs become
    # concurrent flows crossing the endpoints' channels
    for wave in range(rng.randint(2, 4)):
        t0 = wave * rng.choice([1e-3, 2e-3, 3e-3])
        pattern = rng.choice(sorted(CONTENTION_PATTERNS))
        for src, dst in CONTENTION_PATTERNS[pattern]:
            names = (f"g{src % nshared}", f"g{dst % nshared}")
            if names[0] == names[1]:
                names = (names[0],)
            nbytes = rng.choice([0, MiB, 2 * MiB, 5 * MiB])
            jitter = rng.randrange(0, 20) * 1e-6
            copies.append((t0 + jitter, names, nbytes, f"c{tag}"))
            tag += 1
    # disjoint trains: the incremental solver's fast-admit/finish regime
    for i in range(ndisjoint):
        t = rng.randrange(0, 50) * 1e-5
        for hop in range(rng.randint(3, 8)):
            copies.append((t, (f"pv{i}",), rng.choice([MiB, 3 * MiB]), f"t{tag}"))
            tag += 1
            t += rng.randrange(1, 30) * 1e-4

    faults: list[tuple] = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(["down", "stall", "flap"])
        victim = rng.choice([c[0] for c in channels])
        at = rng.randrange(1, 40) * 1e-4
        if kind == "down":
            faults.append(("down", victim, at, rng.choice([5e-4, 2e-3])))
        elif kind == "stall":
            faults.append(("stall", victim, at, rng.choice([3e-4, 1e-3])))
        else:
            faults.append(("flap", victim, at, 4e-4, 8e-4, at + 6e-3, seed))

    return Scenario(tuple(channels), tuple(copies), tuple(faults))


def run_scenario(scn: Scenario, *, full_recompute: bool):
    eng = Engine()
    tracer = Tracer()
    fab = Fabric(eng, tracer=tracer, full_recompute=full_recompute)
    for name, alpha, beta in scn.channels:
        fab.add_channel(name, alpha=alpha, beta=beta)

    outcomes: list[tuple[str, float, bool]] = []

    def issue(names, nbytes, tag):
        fab.copy(names, nbytes, tag=tag).add_callback(
            lambda ev: outcomes.append((tag, eng.now, ev.ok))
        )

    for at, names, nbytes, tag in scn.copies:
        eng.call_at(at).add_callback(
            lambda _ev, n=names, b=nbytes, t=tag: issue(n, b, t)
        )

    schedule = FaultSchedule()
    for f in scn.faults:
        if f[0] == "down":
            schedule.add(LinkDown(f[1], at=f[2], duration=f[3]))
        elif f[0] == "stall":
            schedule.add(StallInjector(f[1], at=f[2], duration=f[3]))
        else:
            schedule.add(
                FlappingLink(
                    f[1], first_down=f[2], mean_down=f[3], mean_up=f[4],
                    until=f[5], seed=f[6],
                )
            )
    schedule.attach(fab)

    eng.run()
    return eng, fab, tracer, outcomes


@pytest.mark.parametrize("seed", range(8))
def test_randomized_scenarios_bit_identical(seed):
    scn = generate_scenario(seed)
    eng_i, fab_i, tr_i, out_i = run_scenario(scn, full_recompute=False)
    eng_f, fab_f, tr_f, out_f = run_scenario(scn, full_recompute=True)

    # the whole observable timeline, bit for bit (records are exact
    # float tuples, and their order is part of the contract)
    assert tr_i.records == tr_f.records
    assert eng_i.now == eng_f.now
    assert out_i == out_f

    # accounting parity: completions, failures, per-channel bytes/busy
    assert fab_i.flows_admitted == fab_f.flows_admitted
    assert fab_i.flows_completed == fab_f.flows_completed
    assert fab_i.flows_failed == fab_f.flows_failed
    for name, _alpha, _beta in scn.channels:
        ci, cf = fab_i.channel(name), fab_f.channel(name)
        assert ci.total_bytes == cf.total_bytes
        assert ci.busy_time == cf.busy_time
        assert ci.completed_bytes == cf.completed_bytes

    # and the incremental run actually took its fast paths (the test
    # would prove nothing if it silently fell back to full solves)
    assert fab_i.rate_recomputes < fab_f.rate_recomputes


def _ucx_workload(*, flight_recorder: bool, fault_at: float | None = None):
    """A transport-level workload (queueing, multi-path puts, recovery when
    ``fault_at`` arms a link-down) with the flight recorder on or off."""
    from repro.sim.faults import FaultSchedule as Schedule
    from repro.topology import systems
    from repro.ucx import TransportConfig, UCXContext

    eng = Engine()
    tracer = Tracer()
    topo = systems.beluga()
    ctx = UCXContext(
        eng,
        topo,
        config=TransportConfig(
            max_inflight_per_pair=1, flight_recorder=flight_recorder
        ),
        tracer=tracer,
    )
    if fault_at is not None:
        Schedule(
            LinkDown(topo.direct_hop(0, 1)[0], at=fault_at, duration=1e3)
        ).attach(ctx.runtime.fabric)
    events = [
        ctx.put(0, 1, nbytes, tag=f"t{i}")
        for i, nbytes in enumerate((MiB, 8 * MiB, 2 * MiB))
    ]
    events.append(ctx.put(2, 3, 4 * MiB, tag="x"))
    results = tuple(eng.run(until=ev) for ev in events)
    return eng, tracer, results


def test_flight_recorder_off_bit_identical():
    """The recorder never schedules events or mutates simulation state, so
    a recorder-on run's observable timeline is bit-identical to recorder-off
    (the tentpole's always-on claim: tracing is pure observation)."""
    eng_on, tr_on, res_on = _ucx_workload(flight_recorder=True)
    eng_off, tr_off, res_off = _ucx_workload(flight_recorder=False)
    assert tr_on.records == tr_off.records
    assert eng_on.now == eng_off.now
    assert res_on == res_off


def test_flight_recorder_off_bit_identical_across_recovery():
    """Same property through the retry/replan machinery, whose hot paths
    carry the densest tracing touchpoints."""
    # anchor the fault mid-way through the second (8 MiB, queued) put
    eng0, _tr0, res0 = _ucx_workload(flight_recorder=False)
    fault_at = res0[0].duration + 0.45 * res0[1].duration
    eng_on, tr_on, res_on = _ucx_workload(
        flight_recorder=True, fault_at=fault_at
    )
    eng_off, tr_off, res_off = _ucx_workload(
        flight_recorder=False, fault_at=fault_at
    )
    assert any(r.retries > 0 for r in res_on)  # the fault actually bit
    assert tr_on.records == tr_off.records
    assert eng_on.now == eng_off.now
    assert res_on == res_off
    assert eng_on.now != eng0.now  # and it changed the timeline it traced


def _graph_workload(
    *,
    transfer_graphs: bool,
    fault_at: float | None = None,
    flight_recorder: bool = True,
):
    """A transport workload with *repeated same-shape puts*, so compiled
    graph replay actually fires (the first put of each shape compiles, the
    repeats replay).  Returns the context too, for cache-stat assertions."""
    from repro.sim.faults import FaultSchedule as Schedule
    from repro.topology import systems
    from repro.ucx import TransportConfig, UCXContext

    eng = Engine()
    tracer = Tracer()
    topo = systems.beluga()
    ctx = UCXContext(
        eng,
        topo,
        config=TransportConfig(
            max_inflight_per_pair=1,
            flight_recorder=flight_recorder,
            transfer_graphs=transfer_graphs,
        ),
        tracer=tracer,
    )
    if fault_at is not None:
        Schedule(
            LinkDown(topo.direct_hop(0, 1)[0], at=fault_at, duration=1e3)
        ).attach(ctx.runtime.fabric)
    sizes = (8 * MiB, 8 * MiB, 2 * MiB, 8 * MiB, 2 * MiB, MiB, MiB)
    events = [ctx.put(0, 1, n, tag=f"t{i}") for i, n in enumerate(sizes)]
    events.append(ctx.put(2, 3, 4 * MiB, tag="x"))
    results = tuple(eng.run(until=ev) for ev in events)
    return eng, tracer, results, ctx


def _assert_bit_identical(run_a, run_b):
    eng_a, tr_a, res_a, ctx_a = run_a
    eng_b, tr_b, res_b, ctx_b = run_b
    assert tr_a.records == tr_b.records
    assert eng_a.now == eng_b.now
    assert res_a == res_b
    fab_a, fab_b = ctx_a.runtime.fabric, ctx_b.runtime.fabric
    assert sorted(fab_a.channels) == sorted(fab_b.channels)
    for name, ch_a in fab_a.channels.items():
        ch_b = fab_b.channel(name)
        assert ch_a.total_bytes == ch_b.total_bytes
        assert ch_a.busy_time == ch_b.busy_time
        assert ch_a.completed_bytes == ch_b.completed_bytes


def test_graph_replay_bit_identical():
    """ISSUE 8 acceptance: a replayed transfer's observable timeline —
    tracer records, clock, results, per-channel byte accounting — is
    bit-identical to cold-path execution, with the flight recorder on."""
    on = _graph_workload(transfer_graphs=True)
    off = _graph_workload(transfer_graphs=False)
    # replay genuinely fired (the certification would prove nothing if
    # every put silently took the cold path)
    stats = on[3].graphs.stats()
    assert stats["hits"] > 0 and stats["compiles"] > 0
    assert on[3].pipeline.transfers_replayed > 0
    assert off[3].pipeline.transfers_replayed == 0
    assert off[3].graphs.stats()["hits"] == 0
    _assert_bit_identical(on, off)


def test_graph_replay_bit_identical_recorder_off():
    """Same certification with the flight recorder disabled — replay must
    not depend on the recorder's span bookkeeping."""
    on = _graph_workload(transfer_graphs=True, flight_recorder=False)
    off = _graph_workload(transfer_graphs=False, flight_recorder=False)
    assert on[3].graphs.stats()["hits"] > 0
    _assert_bit_identical(on, off)


def test_graph_replay_bit_identical_across_recovery():
    """Replay through the retry/replan machinery: faults invalidate the
    affected graph, recovery replans take the cold path, and the timeline
    still matches graphs-off bit for bit."""
    _eng0, _tr0, res0, _ctx0 = _graph_workload(transfer_graphs=False)
    fault_at = res0[0].duration + 0.45 * res0[1].duration
    on = _graph_workload(transfer_graphs=True, fault_at=fault_at)
    off = _graph_workload(transfer_graphs=False, fault_at=fault_at)
    assert any(r.retries > 0 for r in on[2])  # the fault actually bit
    # the faulted graph was discarded so the next same-shape put recompiles
    assert on[3].graphs.recovery_invalidations > 0
    _assert_bit_identical(on, off)


def _overload_workload(extra: dict, *, fault_at: float | None = None):
    """The `_ucx_workload` mix with overload-layer knobs layered on top."""
    from repro.sim.faults import FaultSchedule as Schedule
    from repro.topology import systems
    from repro.ucx import TransportConfig, UCXContext

    eng = Engine()
    tracer = Tracer()
    topo = systems.beluga()
    ctx = UCXContext(
        eng,
        topo,
        config=TransportConfig(max_inflight_per_pair=1, **extra),
        tracer=tracer,
    )
    if fault_at is not None:
        Schedule(
            LinkDown(topo.direct_hop(0, 1)[0], at=fault_at, duration=1e3)
        ).attach(ctx.runtime.fabric)
    events = [
        ctx.put(0, 1, nbytes, tag=f"t{i}")
        for i, nbytes in enumerate((MiB, 8 * MiB, 2 * MiB))
    ]
    events.append(ctx.put(2, 3, 4 * MiB, tag="x"))
    results = tuple(eng.run(until=ev) for ev in events)
    return eng, tracer, results


_ARMED_IDLE = dict(
    admission_queue_limit=10**6,
    overload_pressured_depth=10**6,
    overload_shedding_depth=10**6,
    overload_wait_pressured=1e9,
    retry_budget_total=10**6,
    retry_budget_per_pair=10**6,
)


def test_overload_armed_but_idle_bit_identical():
    """ISSUE 9 acceptance: the overload layer fully *armed* but never
    triggered (huge thresholds and budgets) must leave the observable
    timeline bit-identical to the default configuration."""
    eng_a, tr_a, res_a = _overload_workload({})
    eng_b, tr_b, res_b = _overload_workload(_ARMED_IDLE)
    assert tr_a.records == tr_b.records
    assert eng_a.now == eng_b.now
    assert res_a == res_b


def test_overload_armed_but_idle_bit_identical_across_recovery():
    """Same certification through retry/replan: armed budgets must grant
    every token and a lone backoff must see collective scale 1."""
    _eng0, _tr0, res0 = _overload_workload({})
    fault_at = res0[0].duration + 0.45 * res0[1].duration
    eng_a, tr_a, res_a = _overload_workload({}, fault_at=fault_at)
    eng_b, tr_b, res_b = _overload_workload(_ARMED_IDLE, fault_at=fault_at)
    assert any(r.retries > 0 for r in res_a)  # the fault actually bit
    assert tr_a.records == tr_b.records
    assert eng_a.now == eng_b.now
    assert res_a == res_b


def test_generator_produces_contention_and_faults():
    """The scenarios genuinely contain what they claim to mix."""
    kinds = set()
    shared_flows = 0
    for seed in range(8):
        scn = generate_scenario(seed)
        kinds.update(f[0] for f in scn.faults)
        shared_flows += sum(1 for _t, names, _b, _tag in scn.copies
                            if len(names) > 1)
    assert shared_flows > 0
    assert len(kinds) >= 2  # at least two distinct fault types across seeds

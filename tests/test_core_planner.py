"""Tests for Algorithm 1 (PathPlanner) and the numerical cross-check."""

import numpy as np
import pytest

from repro.core.numerical import grid_refine, solve_exact_fractions
from repro.core.params import ParameterStore, PathParams
from repro.core.planner import PathPlanner, plan_transfer
from repro.topology import systems
from repro.topology.routing import enumerate_paths
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def beluga():
    return systems.beluga()


@pytest.fixture(scope="module")
def narval():
    return systems.narval()


class TestPlannerBasics:
    def test_plan_covers_all_bytes(self, beluga):
        plan = plan_transfer(beluga, 0, 1, 64 * MiB)
        assert sum(a.nbytes for a in plan.assignments) == 64 * MiB
        assert plan.theta_vector().sum() == pytest.approx(1.0)

    def test_four_paths_on_beluga(self, beluga):
        plan = plan_transfer(beluga, 0, 1, 64 * MiB)
        assert [a.path.path_id for a in plan.assignments] == [
            "direct", "gpu:2", "gpu:3", "host",
        ]

    def test_alignment(self, beluga):
        planner = PathPlanner(beluga, alignment=4096)
        plan = planner.plan(0, 1, 64 * MiB + 17)
        for a in plan.assignments:
            if a.path.path_id != "direct":
                assert a.nbytes % 4096 == 0
        assert sum(a.nbytes for a in plan.assignments) == 64 * MiB + 17

    def test_direct_gets_leftover(self, beluga):
        planner = PathPlanner(beluga, alignment=1 * MiB)
        n = 64 * MiB + 3
        plan = planner.plan(0, 1, n)
        assert sum(a.nbytes for a in plan.assignments) == n
        # only direct may carry a non-aligned share
        for a in plan.assignments:
            if a.path.path_id != "direct":
                assert a.nbytes % (1 * MiB) == 0

    def test_staged_paths_chunked(self, beluga):
        plan = plan_transfer(beluga, 0, 1, 256 * MiB)
        for a in plan.active_assignments:
            if a.path.is_staged:
                assert a.chunks >= 1
            else:
                assert a.chunks == 1

    def test_zero_bytes(self, beluga):
        plan = plan_transfer(beluga, 0, 1, 0)
        assert plan.nbytes == 0
        assert sum(a.nbytes for a in plan.assignments) == 0
        assert plan.predicted_time > 0  # latency only

    def test_small_message_collapses_to_direct(self, beluga):
        plan = plan_transfer(beluga, 0, 1, 4 * KiB)
        assert plan.assignment_for("direct").nbytes == 4 * KiB
        assert plan.num_active_paths == 1

    def test_large_message_multipath_speedup(self, beluga):
        """Model predicts close to the ~2.9x aggregate of 3 GPU paths."""
        planner = PathPlanner(beluga)
        n = 512 * MiB
        multi = planner.plan(0, 1, n, include_host=False)
        direct_only = planner.plan(0, 1, n, max_gpu_staged=0, include_host=False)
        speedup = direct_only.predicted_time / multi.predicted_time
        assert 2.0 < speedup < 3.0

    def test_predict_helpers(self, beluga):
        planner = PathPlanner(beluga)
        t = planner.predict_time(0, 1, 64 * MiB)
        bw = planner.predict_bandwidth(0, 1, 64 * MiB)
        assert bw == pytest.approx(64 * MiB / t)

    def test_negative_size_rejected(self, beluga):
        with pytest.raises(ValueError):
            plan_transfer(beluga, 0, 1, -1)

    def test_describe(self, beluga):
        text = plan_transfer(beluga, 0, 1, 64 * MiB).describe()
        assert "direct" in text and "GB/s" in text

    def test_assignment_for_missing(self, beluga):
        plan = plan_transfer(beluga, 0, 1, 64 * MiB, include_host=False)
        with pytest.raises(KeyError):
            plan.assignment_for("host")


class TestPlannerCache:
    def test_cache_hit(self, beluga):
        planner = PathPlanner(beluga)
        p1 = planner.plan(0, 1, 64 * MiB)
        p2 = planner.plan(0, 1, 64 * MiB)
        assert not p1.from_cache
        assert p2.from_cache
        assert p2.predicted_time == p1.predicted_time
        assert planner.cache.hits == 1

    def test_cache_key_includes_config(self, beluga):
        planner = PathPlanner(beluga)
        planner.plan(0, 1, 64 * MiB, include_host=True)
        p = planner.plan(0, 1, 64 * MiB, include_host=False)
        assert not p.from_cache

    def test_cache_disabled(self, beluga):
        planner = PathPlanner(beluga)
        planner.plan(0, 1, 64 * MiB, use_cache=False)
        p = planner.plan(0, 1, 64 * MiB, use_cache=False)
        assert not p.from_cache


class TestSequentialInitiation:
    def test_later_paths_pay_initiation(self, beluga):
        planner = PathPlanner(beluga, sequential_initiation=True)
        plan = planner.plan(0, 1, 64 * MiB)
        inits = [a.params.initiation for a in plan.assignments]
        assert inits[0] == 0.0
        assert all(b >= a for a, b in zip(inits, inits[1:]))
        assert inits[-1] > 0

    def test_toggle_off(self, beluga):
        planner = PathPlanner(beluga, sequential_initiation=False)
        plan = planner.plan(0, 1, 64 * MiB)
        assert all(a.params.initiation == 0.0 for a in plan.assignments)

    def test_initiation_shifts_fractions(self, beluga):
        on = PathPlanner(beluga, sequential_initiation=True).plan(0, 1, 8 * MiB)
        off = PathPlanner(beluga, sequential_initiation=False).plan(0, 1, 8 * MiB)
        # later-scheduled paths get (weakly) less under the correction
        assert on.assignments[-1].theta <= off.assignments[-1].theta + 1e-12


class TestPipeliningToggle:
    def test_pipelining_improves_prediction(self, beluga):
        n = 256 * MiB
        pipe = PathPlanner(beluga, pipelining=True).plan(0, 1, n)
        nopipe = PathPlanner(beluga, pipelining=False).plan(0, 1, n)
        assert pipe.predicted_time < nopipe.predicted_time

    def test_nopipe_single_chunk(self, beluga):
        plan = PathPlanner(beluga, pipelining=False).plan(0, 1, 256 * MiB)
        assert all(a.chunks == 1 for a in plan.assignments)


class TestOtherTopologies:
    def test_pcie_only_all_host(self):
        topo = systems.pcie_only()
        plan = plan_transfer(topo, 0, 1, 64 * MiB)
        assert plan.assignment_for("host").nbytes == 64 * MiB

    def test_mi250_staged_only_pair(self):
        topo = systems.mi250_node()
        plan = plan_transfer(topo, 0, 2, 64 * MiB, include_host=False)
        ids = {a.path.path_id for a in plan.active_assignments}
        assert ids <= {"gpu:1", "gpu:3"}
        assert sum(a.nbytes for a in plan.assignments) == 64 * MiB

    def test_narval_host_share_small(self, narval):
        """Narval's DRAM-throttled host path should carry a tiny share."""
        plan = plan_transfer(narval, 0, 1, 64 * MiB)
        host_theta = plan.assignment_for("host").theta
        direct_theta = plan.assignment_for("direct").theta
        assert host_theta < 0.1
        assert direct_theta > 0.3


class TestNumericalCrossCheck:
    def test_slsqp_matches_grid(self, beluga):
        store = ParameterStore.ground_truth(beluga)
        paths = enumerate_paths(beluga, 0, 1, include_host=False, max_gpu_staged=1)
        params = [store.path_params(p) for p in paths]
        n = 128 * MiB
        exact = solve_exact_fractions(params, n)
        grid = grid_refine(params, n, resolution=200)
        assert exact.time <= grid.time * 1.01

    def test_linearized_close_to_exact_large_n(self, beluga):
        """The φ-linearised plan is within a few % of the exact optimum."""
        store = ParameterStore.ground_truth(beluga)
        planner = PathPlanner(beluga, store)
        paths = enumerate_paths(beluga, 0, 1, include_host=False)
        params = [store.path_params(p) for p in paths]
        n = 256 * MiB
        exact = solve_exact_fractions(params, n)
        plan = planner.plan(0, 1, n, include_host=False)
        # Evaluate the planner's θ with the exact nonlinear time model:
        from repro.core.numerical import exact_path_time

        t_plan = max(
            exact_path_time(p, a.theta, n)
            for p, a in zip(params, plan.assignments)
        )
        assert t_plan <= exact.time * 1.10

    def test_exact_solver_simplex(self, beluga):
        store = ParameterStore.ground_truth(beluga)
        paths = enumerate_paths(beluga, 0, 1)
        params = [store.path_params(p) for p in paths]
        sol = solve_exact_fractions(params, 64 * MiB)
        assert sol.theta.sum() == pytest.approx(1.0)
        assert np.all(sol.theta >= 0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_refine([PathParams(path_id="a", alpha1=0, beta1=1)] * 4, 100)

"""Tests for the bounded copy-engine knob."""

import pytest

from repro.gpu import GPURuntime
from repro.sim import Engine
from repro.topology import systems
from repro.units import MiB, gbps


def run_three_parallel_copies(copy_engines):
    """GPU 0 copies to 1, 2, 3 on three streams; returns makespan."""
    eng = Engine()
    runtime = GPURuntime(eng, systems.beluga(), copy_engines=copy_engines)
    events = []
    for dst in (1, 2, 3):
        s = runtime.create_stream(0)
        events.append(runtime.peer_copy_async(0, dst, 46 * MiB, s))
    eng.run(until=eng.all_of(events))
    return eng.now


class TestCopyEngines:
    def test_unbounded_runs_parallel(self):
        t = run_three_parallel_copies(None)
        one = systems.beluga().hop_alpha(systems.beluga().direct_hop(0, 1))
        one += 46 * MiB / gbps(46)
        assert t == pytest.approx(one, rel=1e-9)

    def test_single_engine_serializes(self):
        t1 = run_three_parallel_copies(1)
        t3 = run_three_parallel_copies(3)
        assert t1 == pytest.approx(3 * t3, rel=1e-6)

    def test_two_engines_partial_overlap(self):
        t2 = run_three_parallel_copies(2)
        t1 = run_three_parallel_copies(1)
        t3 = run_three_parallel_copies(3)
        assert t3 < t2 < t1
        assert t2 == pytest.approx(2 * t3, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            GPURuntime(Engine(), systems.beluga(), copy_engines=0)

    def test_engine_released_after_copy(self):
        eng = Engine()
        runtime = GPURuntime(eng, systems.beluga(), copy_engines=1)
        s = runtime.create_stream(0)
        eng.run(until=runtime.peer_copy_async(0, 1, 1 * MiB, s))
        sem = runtime._copy_engines[0]
        assert sem.held() == 0

"""Tests for the concurrent multi-pair experiment (paper §3 loaded case)."""

import pytest

from repro.bench.experiments.concurrent_pairs import (
    PATTERNS,
    run_concurrent_pairs,
)
from repro.units import MiB


@pytest.fixture(scope="module")
def conc_table():
    return run_concurrent_pairs(("beluga",), sizes=[64 * MiB])


class TestConcurrentPairs:
    def test_all_patterns_measured(self, conc_table):
        assert {r["pattern"] for r in conc_table} == set(PATTERNS)

    def test_multipath_helps_when_idle_paths_exist(self, conc_table):
        """Patterns that leave links idle gain from multi-path; the
        all-to-one pattern saturates the receiver's incoming links already,
        so splitting gains nothing (it even costs slightly — staged hops
        contend with the other senders' direct flows).  This is §3's
        'under-utilized paths' condition, made quantitative."""
        for r in conc_table:
            if r["pattern"] == "all_to_one":
                assert 0.9 < r["speedup"] < 1.05
            else:
                assert r["speedup"] > 1.1

    def test_isolated_pair_gains_most(self, conc_table):
        by_pattern = {r["pattern"]: r["speedup"] for r in conc_table}
        assert by_pattern["single_pair"] > by_pattern["ring"]
        assert by_pattern["single_pair"] > by_pattern["all_to_one"]

    def test_disjoint_pairs_keep_most_of_the_gain(self, conc_table):
        """Two disjoint pairs only share staged detours, not direct links."""
        by_pattern = {r["pattern"]: r["speedup"] for r in conc_table}
        assert by_pattern["disjoint_pairs"] > by_pattern["ring"]

    def test_pattern_prediction_is_upper_bound_but_sane(self, conc_table):
        """The contention model's aggregate bounds the measurement from
        above (it ignores chunking bubbles) within a 2x band."""
        for r in conc_table:
            assert r["predicted_gbps"] >= r["multi_gbps"] * 0.95
            assert r["predicted_gbps"] <= r["multi_gbps"] * 2.0

    def test_all_to_one_throttled_by_receiver(self, conc_table):
        """Three senders into one GPU: the receiver's incoming links bound
        the aggregate regardless of path splitting."""
        row = conc_table.where(pattern="all_to_one").rows[0]
        # incoming capacity of GPU0 = 3 links x 46 GB/s = 138
        assert row["multi_gbps"] <= 138 * 1.02

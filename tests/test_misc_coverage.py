"""Small tests for remaining helpers (datatypes, endpoint flush, tables)."""

import numpy as np
import pytest

from repro.mpi.datatypes import concat_payloads, copy_payload, payload_nbytes
from repro.sim import Engine
from repro.topology import systems
from repro.ucx import UCXContext
from repro.units import MiB
from repro.util.tables import Table


class TestDatatypes:
    def test_payload_nbytes_from_payload(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64), None) == 80

    def test_payload_nbytes_agreement(self):
        assert payload_nbytes(np.zeros(4, dtype=np.int32), 16) == 16

    def test_disagreement_rejected(self):
        with pytest.raises(ValueError):
            payload_nbytes(np.zeros(4, dtype=np.int32), 17)

    def test_neither_rejected(self):
        with pytest.raises(ValueError):
            payload_nbytes(None, None)
        with pytest.raises(ValueError):
            payload_nbytes(None, -1)

    def test_copy_payload_is_independent(self):
        src = np.zeros(4)
        dup = copy_payload(src)
        src[0] = 9
        assert dup[0] == 0
        assert copy_payload(None) is None

    def test_concat_payloads(self):
        out = concat_payloads([np.array([1.0, 2.0]), np.array([3.0])])
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])


class TestEndpointFlush:
    def test_flush_waits_for_pipeline_streams(self):
        eng = Engine()
        ctx = UCXContext(eng, systems.beluga())
        ep = ctx.endpoint(0, 1)
        ep.put(32 * MiB)
        eng.run(until=ep.flush())
        # flush drained everything: one more flush is immediate
        ev = ep.flush()
        eng.run(until=ev)
        assert ev.triggered


class TestTableExtend:
    def test_extend_from_rows(self):
        t = Table(["a", "b"])
        t.extend([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert t.column("a") == [1, 3]

    def test_extend_validates_columns(self):
        t = Table(["a"])
        with pytest.raises(KeyError):
            t.extend([{"zzz": 1}])

"""Cross-validation: the simulator against the paper's equations.

On a noise-free system with isolated paths the simulator and the model
describe *the same physics*, so they must agree exactly:

* a direct transfer takes Hockney time (Eq. 1);
* a k-chunk staged transfer takes the pipelined time of Eq. (13)
  (per-chunk sync ε charged on the second hop's stream);
* the end-to-end multi-path plan completes in ~max_i T_i (Eq. 4).

These identities are what justifies using the simulator as the paper's
"measured" column.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hockney import path_time
from repro.core.params import ParameterStore
from repro.core.pipeline_model import pipelined_time
from repro.gpu.runtime import GPURuntime
from repro.sim import Engine
from repro.topology import systems
from repro.topology.routing import enumerate_paths
from repro.ucx import UCXContext
from repro.units import MiB


def simulate_staged(topo, path, nbytes, k):
    """Run the 3-step chunk loop on the simulator; return elapsed time."""
    engine = Engine()
    runtime = GPURuntime(engine, topo)
    s1 = runtime.create_stream(path.src)
    stage_dev = path.via if path.via is not None else path.src
    s2 = runtime.create_stream(stage_dev)
    eps = runtime.sync_cost(via_gpu=path.via is not None)
    hop1, hop2 = path.hops
    base, rem = divmod(nbytes, k)
    done = None
    for c in range(k):
        chunk = base + (1 if c < rem else 0)
        runtime.copy_on_hop_async(hop1, chunk, s1, tag=f"h1:{c}")
        ev = runtime.create_event(f"c{c}")
        ev.record(s1)
        s2.wait_event(ev)
        s2.delay(eps)
        done = runtime.copy_on_hop_async(hop2, chunk, s2, tag=f"h2:{c}")
    engine.run(until=done)
    return engine.now


class TestDirectHockneyIdentity:
    @given(n_mib=st.integers(min_value=1, max_value=512))
    @settings(max_examples=20, deadline=None)
    def test_direct_copy_is_hockney(self, n_mib):
        topo = systems.beluga()
        store = ParameterStore.ground_truth(topo)
        paths = enumerate_paths(topo, 0, 1)
        params = store.path_params(paths[0])
        n = n_mib * MiB

        engine = Engine()
        runtime = GPURuntime(engine, topo)
        stream = runtime.create_stream(0)
        engine.run(until=runtime.copy_on_hop_async(paths[0].hops[0], n, stream))
        assert engine.now == pytest.approx(path_time(params, 1.0, n), rel=1e-9)


class TestStagedEq13Identity:
    @pytest.mark.parametrize("system", ["beluga", "narval"])
    @pytest.mark.parametrize("k", [1, 2, 4, 16])
    def test_gpu_staged_matches_eq13(self, system, k):
        """Symmetric staged path (β = β'): simulator == Eq. 13 Case 2."""
        topo = systems.by_name(system)
        store = ParameterStore.ground_truth(topo)
        path = enumerate_paths(topo, 0, 1)[1]  # gpu:2
        params = store.path_params(path)
        n = 64 * MiB
        simulated = simulate_staged(topo, path, n, k)
        analytic = pipelined_time(params, 1.0, n, k)
        assert simulated == pytest.approx(analytic, rel=2e-3)

    def test_host_staged_matches_eq13_when_dram_unconstrained(self):
        """Host path on Beluga (PCIe-bound, DRAM has headroom for one
        direction): simulator == Eq. 13."""
        topo = systems.beluga()
        store = ParameterStore.ground_truth(topo)
        path = enumerate_paths(topo, 0, 1)[-1]  # host
        params = store.path_params(path)
        n = 32 * MiB
        k = 4
        simulated = simulate_staged(topo, path, n, k)
        analytic = pipelined_time(params, 1.0, n, k)
        # both hops cross dram:0; with 2*11.5 < 24 GB/s there is no DRAM
        # throttling, so the identity holds up to chunk-overlap granularity
        assert simulated == pytest.approx(analytic, rel=0.02)

    def test_narval_host_is_slower_than_eq13(self):
        """On Narval the two host hops share the per-NUMA DRAM channel —
        the simulator is *slower* than the isolated-links model.  This gap
        IS Observation 3."""
        topo = systems.narval()
        store = ParameterStore.ground_truth(topo)
        path = enumerate_paths(topo, 0, 1)[-1]
        params = store.path_params(path)
        n = 64 * MiB
        k = 8
        simulated = simulate_staged(topo, path, n, k)
        analytic = pipelined_time(params, 1.0, n, k)
        assert simulated > analytic * 1.3


class TestEndToEndEq4:
    def test_plan_execution_close_to_predicted_max(self):
        """Pipeline execution of a plan lands near the model's T* on a
        noise-free system (small slack for protocol + chunk integerising)."""
        topo = systems.beluga()
        engine = Engine()
        ctx = UCXContext(engine, topo)
        n = 256 * MiB
        plan = ctx.planner.plan(0, 1, n, include_host=False)
        start = engine.now
        engine.run(until=ctx.pipeline.execute(plan))
        elapsed = engine.now - start
        assert elapsed == pytest.approx(plan.predicted_time, rel=0.03)

    def test_completion_equals_slowest_path(self):
        topo = systems.beluga()
        engine = Engine()
        ctx = UCXContext(engine, topo)
        plan = ctx.planner.plan(0, 1, 128 * MiB, include_host=False)
        results = engine.run(until=ctx.pipeline.execute(plan))
        ends = [r.end for r in results]
        assert engine.now == pytest.approx(max(ends))

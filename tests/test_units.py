"""Unit tests for repro.units."""

import pytest

from repro import units


class TestConstants:
    def test_binary_prefixes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3

    def test_decimal_prefixes(self):
        assert units.KB == 1000
        assert units.MB == 1000**2
        assert units.GB == 1000**3

    def test_time_aliases(self):
        assert units.us == 1e-6
        assert units.ms == 1e-3
        assert units.ns == 1e-9


class TestConversions:
    def test_gbps(self):
        assert units.gbps(25) == 25e9

    def test_gibps(self):
        assert units.gibps(1) == units.GiB

    def test_to_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(42.5)) == pytest.approx(42.5)


class TestFormatting:
    def test_format_bytes_exact(self):
        assert units.format_bytes(2 * units.MiB) == "2MiB"
        assert units.format_bytes(units.GiB) == "1GiB"
        assert units.format_bytes(512) == "512B"

    def test_format_bytes_fractional(self):
        assert units.format_bytes(1.5 * units.MiB) == "1.50MiB"

    def test_format_time(self):
        assert units.format_time(3.2e-6) == "3.200us"
        assert units.format_time(1.5e-3) == "1.500ms"
        assert units.format_time(2.0) == "2.000s"
        assert units.format_time(5e-9) == "5.0ns"

    def test_format_bandwidth(self):
        assert units.format_bandwidth(25e9) == "25.00GB/s"
        assert units.format_bandwidth(500e6) == "500.00MB/s"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4MiB", 4 * units.MiB),
            ("4M", 4 * units.MiB),
            ("512K", 512 * units.KiB),
            ("1G", units.GiB),
            ("2GB", 2 * units.GB),
            ("100", 100),
            ("100B", 100),
            ("1.5M", int(1.5 * units.MiB)),
        ],
    )
    def test_parse(self, text, expected):
        assert units.parse_size(text) == expected

    def test_parse_case_insensitive(self):
        assert units.parse_size("4mib") == 4 * units.MiB

    def test_parse_missing_number(self):
        with pytest.raises(ValueError):
            units.parse_size("MiB")

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            units.parse_size("abc")

"""Tests for the flight recorder: ring semantics, journal, and queries.

Covers the slab ring's eviction accounting (bounded memory, exact dropped
counters), the write-ahead journal (spans materialise on query or when the
journal hits its bound, and replay is equivalent to eager writes), the
per-stage latency aggregates, the :class:`TraceTree` query API, causal
span parenting across recovery replans (the ISSUE-7 acceptance story), and
the chrome-trace export's flight process.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.obs.chrome_trace import FLIGHT_PID, trace_events
from repro.obs.tracing import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    TraceTree,
    _StageStat,
)
from repro.sim import Engine
from repro.topology import systems
from repro.ucx import TransportConfig, UCXContext
from repro.units import MiB


def make_recorder(capacity=64, **kw):
    eng = Engine()
    return eng, FlightRecorder(eng, capacity=capacity, **kw)


def make_ctx(**cfg):
    eng = Engine()
    ctx = UCXContext(eng, systems.beluga(), config=TransportConfig(**cfg))
    return eng, ctx


def fake_chunk_event(end):
    """Stands in for a completed copy event (record_path reads .value.end)."""
    return SimpleNamespace(value=SimpleNamespace(end=end))


class TestRingSemantics:
    def test_spans_materialise_on_query(self):
        _, rec = make_recorder()
        tid, root = rec.begin_trace("transfer", {"src": 0, "dst": 1})
        assert (tid, root) == (0, 0)
        # journalled, not yet in the ring — but the sid is reserved
        assert rec.spans_recorded == 1
        span = rec.get(root)  # query drains the journal
        assert span is not None
        assert span.kind == "transfer"
        assert span.open
        assert span.attrs == {"src": 0, "dst": 1}

    def test_finish_closes_and_merges_attrs(self):
        eng, rec = make_recorder()
        sid = rec.begin("pipeline.path[0]", trace_id=0, parent=-1, t0=1.0)
        eng.now = 3.0
        assert rec.finish(sid, attrs={"path": "direct"}, ok=True)
        span = rec.get(sid)
        assert not span.open
        assert span.duration == 2.0
        assert span.attrs == {"path": "direct", "ok": True}

    def test_eviction_counts_exact(self):
        _, rec = make_recorder(capacity=8)
        for i in range(20):
            rec.record("marker", trace_id=0, t0=float(i))
        assert len(rec) == 8
        summary = rec.summary()  # drains
        assert summary["dropped"] == 12
        assert summary["dropped_open"] == 0
        assert rec.spans_recorded == 20
        # the ring holds exactly the newest 8 sids
        assert [s.sid for s in rec.iter_spans()] == list(range(12, 20))

    def test_open_span_eviction_counted_separately(self):
        _, rec = make_recorder(capacity=4)
        sid = rec.begin("transfer", trace_id=0)
        for i in range(4):  # wraps over the open root
            rec.record("marker", trace_id=0, t0=float(i))
        assert rec.summary()["dropped_open"] == 1
        assert rec.get(sid) is None

    def test_finish_after_eviction_is_noop(self):
        eng, rec = make_recorder(capacity=4)
        sid = rec.begin("transfer", trace_id=0)
        rec._drain()
        for i in range(4):
            rec.record("marker", trace_id=0, t0=float(i))
        rec._drain()
        eng.now = 5.0
        rec.finish(sid, ok=True)  # arrives after the wrap
        rec._drain()
        # the close was dropped, not applied to the slot's new occupant
        assert rec.get(sid) is None
        assert all(s.attrs == {} for s in rec.iter_spans())

    def test_disabled_recorder_records_nothing(self):
        _, rec = make_recorder(enabled=False)
        assert rec.begin_trace("transfer") == (-1, -1)
        assert rec.begin("x", trace_id=0) == -1
        assert rec.record("x", trace_id=0) == -1
        assert not rec.finish(0)
        rec.settle(0, 0, {"ok": True})
        assert rec.spans_recorded == 0
        assert list(rec.iter_spans()) == []

    def test_capacity_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            FlightRecorder(eng, capacity=0)

    def test_clear_resets_everything(self):
        _, rec = make_recorder(capacity=4)
        for i in range(6):
            rec.record("marker", trace_id=0, t0=float(i))
        rec.summary()
        rec.clear()
        assert rec.spans_recorded == 0
        assert rec.dropped == 0
        assert list(rec.iter_spans()) == []
        assert rec.stage_stats()["execution"]["count"] == 0


class TestJournal:
    def test_journal_drains_at_bound(self):
        _, rec = make_recorder(capacity=4096)
        assert rec.journal_limit == max(256, 4096 // 8)
        for i in range(rec.journal_limit):
            rec.record("marker", trace_id=0, t0=float(i))
        assert len(rec._log) == rec.journal_limit
        # the next begin_trace polices the bound and drains first
        rec.begin_trace("transfer")
        assert len(rec._log) == 1

    def test_replay_equivalent_to_eager_writes(self):
        """Draining after every append == draining once at the end."""

        def workload(rec, eager):
            tid, root = rec.begin_trace("transfer", {"src": 0, "dst": 1})
            for i in range(10):
                sid = rec.record(
                    f"pipeline.path[{i % 3}]", tid, root, t0=float(i),
                    t1=float(i) + 0.5, attrs={"path": i},
                )
                if eager:
                    rec._drain()
                rec.record_batch(
                    (f"pipeline.path[{i % 3}].chunk[0]",), tid, sid, (float(i),)
                )
                if eager:
                    rec._drain()
            rec.settle(tid, root, {"ok": True})
            return [
                (s.sid, s.trace_id, s.parent, s.kind, s.t0, s.t1, s.attrs)
                for s in rec.iter_spans()
            ], rec.summary()

        _, rec_lazy = make_recorder(capacity=16)
        _, rec_eager = make_recorder(capacity=16)
        assert workload(rec_lazy, False) == workload(rec_eager, True)

    def test_record_path_defers_chunk_extraction(self):
        _, rec = make_recorder()
        sid = rec.record_path(
            "pipeline.path[0]", 0, -1, 1.0, 4.0, {"path": "direct"},
            chunk_kinds=("pipeline.path[0].chunk[0]", "pipeline.path[0].chunk[1]"),
            chunk_events=(fake_chunk_event(2.0), fake_chunk_event(4.0)),
        )
        spans = list(rec.iter_spans())
        assert [s.kind for s in spans] == [
            "pipeline.path[0]",
            "pipeline.path[0].chunk[0]",
            "pipeline.path[0].chunk[1]",
        ]
        chunks = spans[1:]
        assert all(c.parent == sid for c in chunks)
        assert [c.t0 for c in chunks] == [2.0, 4.0]
        assert all(c.t0 == c.t1 for c in chunks)  # markers

    def test_settle_closes_root_with_attrs(self):
        eng, rec = make_recorder()
        tid, root = rec.begin_trace("transfer", {"src": 0, "dst": 1})
        eng.now = 2.5
        rec.settle(tid, root, {"ok": True, "retries": 0})
        root_span = rec.get(root)
        assert root_span.t1 == 2.5
        assert root_span.attrs == {
            "src": 0, "dst": 1, "ok": True, "retries": 0,
        }
        settle = [s for s in rec.iter_spans() if s.kind == "settle"][0]
        assert settle.parent == root
        assert settle.t0 == settle.t1 == 2.5
        assert settle.attrs == {"ok": True, "retries": 0}


class TestStageStats:
    def test_stage_resolution_strips_indices(self):
        _, rec = make_recorder()
        rec.record("pipeline.path[7]", 0, t0=0.0, t1=2.0)
        rec.record("admission.queue", 0, t0=0.0, t1=1.0)
        rec.record("recovery.retry[3]", 0, t0=0.0, t1=4.0)
        rec.record("pipeline.path[7].chunk[2]", 0, t0=1.0)  # unmapped marker
        stats = rec.stage_stats()
        assert stats["execution"]["count"] == 1
        assert stats["execution"]["max"] == 2.0
        assert stats["queue_wait"]["count"] == 1
        assert stats["recovery"]["count"] == 1

    def test_planning_uses_stage_value_override(self):
        _, rec = make_recorder()
        rec.record("plan", 0, t0=1.0, stage_value=3.25e-5)
        stats = rec.stage_stats()
        assert stats["planning"]["count"] == 1
        assert stats["planning"]["max"] == 3.25e-5

    def test_stagestat_percentiles_nearest_rank(self):
        stat = _StageStat()
        for v in range(1, 101):
            stat.observe(float(v))
        snap = stat.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p99"] == pytest.approx(99.0, abs=1.0)

    def test_stagestat_empty_snapshot(self):
        assert _StageStat().snapshot() == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }


class TestEndToEnd:
    """Whole-stack stories: real puts through UCXContext."""

    def test_put_emits_complete_trace(self):
        eng, ctx = make_ctx()
        eng.run(until=ctx.put(0, 1, 8 * MiB, tag="x"))
        tree = TraceTree(ctx.flight)
        bd = tree.breakdown(0)
        kinds = {s.kind for s in bd.spans}
        assert bd.root.kind == "transfer"
        assert not bd.root.open
        assert bd.root.attrs["ok"] is True
        assert any(k.startswith("plan") for k in kinds)
        assert any(k.startswith("pipeline.path[") for k in kinds)
        assert "settle" in kinds
        # every non-root span parent-links into the trace
        sids = {s.sid for s in bd.spans}
        assert all(s.parent in sids for s in bd.spans if s.parent >= 0)
        # stage accounting covers the transfer's duration drivers
        assert bd.stages["execute"] > 0

    def test_queue_span_under_admission_cap(self):
        eng, ctx = make_ctx(max_inflight_per_pair=1)
        events = [ctx.put(0, 1, 4 * MiB, tag=f"q{i}") for i in range(2)]
        for ev in events:
            eng.run(until=ev)
        tree = TraceTree(ctx.flight)
        waits = [
            s for s in tree.breakdown(1).spans if s.kind == "admission.queue"
        ]
        assert len(waits) == 1
        assert waits[0].duration > 0
        assert waits[0].parent == tree.breakdown(1).root.sid
        # the first put was admitted immediately: no queue span
        assert not any(
            s.kind == "admission.queue" for s in tree.breakdown(0).spans
        )

    def test_tracetree_slowest_and_by_pair(self):
        eng, ctx = make_ctx()
        eng.run(until=ctx.put(0, 1, 64 * MiB, tag="big"))
        eng.run(until=ctx.put(0, 1, MiB, tag="small"))
        eng.run(until=ctx.put(2, 3, 4 * MiB, tag="other"))
        tree = TraceTree(ctx.flight)
        slowest = tree.slowest(2)
        assert len(slowest) == 2
        assert slowest[0].attrs["nbytes"] == 64 * MiB
        assert slowest[0].duration >= slowest[1].duration
        pair = tree.by_pair(0, 1)
        assert [r.attrs["nbytes"] for r in pair] == [64 * MiB, MiB]
        assert tree.by_pair(3, 0) == []

    def test_breakdown_unknown_trace_raises(self):
        _, ctx = make_ctx()
        with pytest.raises(KeyError):
            TraceTree(ctx.flight).breakdown(99)

    def test_stage_stats_populated_by_real_workload(self):
        eng, ctx = make_ctx()
        for i in range(3):
            eng.run(until=ctx.put(0, 1, 8 * MiB, tag=f"s{i}"))
        stats = ctx.flight.stage_stats()
        assert stats["execution"]["count"] >= 3  # one per executed path
        assert stats["planning"]["count"] == 3
        assert stats["planning"]["p99"] > 0  # wall-clock, not simulated
        assert ctx.flight.summary()["traces_started"] == 3

    def test_default_config_records_by_default(self):
        _, ctx = make_ctx()
        assert ctx.flight.enabled
        assert ctx.flight.capacity == DEFAULT_CAPACITY


class TestRecoveryParenting:
    """Satellite 3: span parenting holds across recovery replans."""

    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.bench.experiments.chaos import run_traced_scenario

        return run_traced_scenario(puts=3)

    def test_retry_spans_parent_to_original_root(self, scenario):
        tree = TraceTree(scenario.context.flight)
        bd = tree.breakdown(scenario.trace_id)
        retries = [s for s in bd.spans if s.kind.startswith("recovery.retry")]
        assert retries, "the fault victim must carry recovery spans"
        assert all(r.parent == bd.root.sid for r in retries)
        # the retry round owns its replan and its rescue paths
        for r in retries:
            kids = {k.kind for k in bd.children.get(r.sid, ())}
            assert any(k.startswith("plan") for k in kids)
            assert any(k.startswith("pipeline.path[") for k in kids)

    def test_root_attrs_match_put_result(self, scenario):
        tree = TraceTree(scenario.context.flight)
        root = tree.breakdown(scenario.trace_id).root
        result = scenario.results[scenario.trace_id]
        assert root.attrs["retries"] == result.retries > 0
        assert root.attrs["rerouted_bytes"] == result.rerouted_bytes > 0
        assert root.attrs["ok"] is True

    def test_faulted_path_span_closed_not_ok(self, scenario):
        tree = TraceTree(scenario.context.flight)
        bd = tree.breakdown(scenario.trace_id)
        faulted = [
            s for s in bd.spans
            if s.kind.startswith("pipeline.path[") and ".chunk" not in s.kind
            and s.attrs.get("ok") is False
        ]
        assert faulted, "the killed path must still close its span"
        assert all(not s.open for s in faulted)

    def test_recovery_stage_observed(self, scenario):
        stats = scenario.context.flight.stage_stats()
        assert stats["recovery"]["count"] >= 1
        assert stats["queue_wait"]["count"] >= 1  # puts 2+ waited for the cap


class TestChromeTraceExport:
    def test_flight_spans_nest_under_flight_pid(self):
        eng, ctx = make_ctx()
        eng.run(until=ctx.put(0, 1, 8 * MiB, tag="x"))
        events = trace_events(flight=ctx.flight)
        flight_events = [
            e for e in events if e.get("pid") == FLIGHT_PID and e["ph"] == "X"
        ]
        assert flight_events
        assert all(e["args"]["trace_id"] == 0 for e in flight_events)
        assert all(e["tid"] == 0 for e in flight_events)  # one row per trace
        names = {e["name"] for e in flight_events}
        assert "transfer" in names and "settle" in names
        # parent sids ride along for tooling that re-nests the story
        assert all("parent" in e["args"] for e in flight_events)

    def test_open_spans_excluded_from_export(self):
        _, rec = make_recorder()
        rec.begin("transfer", trace_id=0)
        rec.record("settle", trace_id=1, t0=1.0)
        events = trace_events(flight=rec)
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["settle"]

"""Tests for report rendering and the CLI driver."""

import pytest

from repro.bench import report
from repro.bench.experiments import run_fig4
from repro.cli import main
from repro.units import MiB
from repro.util.tables import Table


def fake_fig5_table():
    t = Table(
        ["system", "paths", "window", "size_mib",
         "direct_gbps", "static_gbps", "dynamic_gbps", "predicted_gbps"],
    )
    for size, d, s, dy, p in [(2, 30, 35, 33, 40), (64, 45, 90, 100, 105)]:
        t.add(system="beluga", paths="3_GPUs", window=1, size_mib=size,
              direct_gbps=d, static_gbps=s, dynamic_gbps=dy, predicted_gbps=p)
    return t


class TestReport:
    def test_render_fig5_has_panels_and_legend(self):
        out = report.render_fig5(fake_fig5_table())
        assert "system=beluga" in out
        assert "o=direct" in out and "predicted" in out

    def test_render_fig4(self):
        table = run_fig4("beluga", sizes=[4 * MiB, 64 * MiB])
        out = report.render_fig4(table)
        assert "theta per path" in out
        assert "direct" in out

    def test_render_fig7(self):
        t = Table(
            ["system", "collective", "paths", "size_mib",
             "direct_latency_us", "static_latency_us", "dynamic_latency_us",
             "static_speedup", "dynamic_speedup"],
        )
        t.add(system="beluga", collective="alltoall", paths="2_GPUs",
              size_mib=16, direct_latency_us=100, static_latency_us=80,
              dynamic_latency_us=75, static_speedup=1.25, dynamic_speedup=1.33)
        out = report.render_fig7(t)
        assert "collective=alltoall" in out

    def test_experiments_markdown(self):
        text = report.experiments_markdown({"Section A": "body text"})
        assert text.startswith("# EXPERIMENTS")
        assert "## Section A" in text and "body text" in text


class TestCli:
    def test_fig4_command(self, capsys):
        assert main(["fig4", "--system", "beluga", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "theta" in out

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--system", "beluga"]) == 0
        out = capsys.readouterr().out
        assert '"system": "beluga"' in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig4", "--system", "mars"])

    def test_invalid_gpu_pair_exits_cleanly(self):
        # Regression: an out-of-range GPU id must produce a clean error
        # message (like the --size fix), not a KeyError traceback.
        with pytest.raises(SystemExit) as exc:
            main(["stats", "--system", "beluga", "--quick", "--dst", "9"])
        assert "invalid --dst 9" in str(exc.value)
        assert "GPUs 0..3" in str(exc.value)
        with pytest.raises(SystemExit) as exc:
            main(["stats", "--system", "beluga", "--quick", "--src", "-1"])
        assert "invalid --src -1" in str(exc.value)

    def test_equal_gpu_pair_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "--system", "beluga", "--quick",
                  "--src", "2", "--dst", "2"])
        assert "must name different GPUs" in str(exc.value)

    def test_invalid_size_still_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["stats", "--system", "beluga", "--size", "banana"])
        assert "invalid --size" in str(exc.value)

    def test_drift_command_prints_recovery_table(self, capsys):
        assert main(["drift", "--system", "beluga", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "closed" in out and "open" in out
        assert "drift events" in out

    def test_critical_path_command_prints_slack(self, capsys):
        assert main(
            ["critical-path", "--system", "beluga", "--quick", "--size", "16M"]
        ) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "max_relative_slack" in out

    def test_stats_dump_writes_artifacts(self, tmp_path, capsys):
        prefix = tmp_path / "run"
        assert main(
            ["stats", "--system", "beluga", "--quick", "--size", "16M",
             "--dump", str(prefix)]
        ) == 0
        assert (tmp_path / "run.metrics.json").exists()
        assert (tmp_path / "run.trace.json").exists()
        assert (tmp_path / "run.decisions.jsonl").exists()

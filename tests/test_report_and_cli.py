"""Tests for report rendering and the CLI driver."""

import pytest

from repro.bench import report
from repro.bench.experiments import run_fig4
from repro.cli import main
from repro.units import MiB
from repro.util.tables import Table


def fake_fig5_table():
    t = Table(
        ["system", "paths", "window", "size_mib",
         "direct_gbps", "static_gbps", "dynamic_gbps", "predicted_gbps"],
    )
    for size, d, s, dy, p in [(2, 30, 35, 33, 40), (64, 45, 90, 100, 105)]:
        t.add(system="beluga", paths="3_GPUs", window=1, size_mib=size,
              direct_gbps=d, static_gbps=s, dynamic_gbps=dy, predicted_gbps=p)
    return t


class TestReport:
    def test_render_fig5_has_panels_and_legend(self):
        out = report.render_fig5(fake_fig5_table())
        assert "system=beluga" in out
        assert "o=direct" in out and "predicted" in out

    def test_render_fig4(self):
        table = run_fig4("beluga", sizes=[4 * MiB, 64 * MiB])
        out = report.render_fig4(table)
        assert "theta per path" in out
        assert "direct" in out

    def test_render_fig7(self):
        t = Table(
            ["system", "collective", "paths", "size_mib",
             "direct_latency_us", "static_latency_us", "dynamic_latency_us",
             "static_speedup", "dynamic_speedup"],
        )
        t.add(system="beluga", collective="alltoall", paths="2_GPUs",
              size_mib=16, direct_latency_us=100, static_latency_us=80,
              dynamic_latency_us=75, static_speedup=1.25, dynamic_speedup=1.33)
        out = report.render_fig7(t)
        assert "collective=alltoall" in out

    def test_experiments_markdown(self):
        text = report.experiments_markdown({"Section A": "body text"})
        assert text.startswith("# EXPERIMENTS")
        assert "## Section A" in text and "body text" in text


class TestCli:
    def test_fig4_command(self, capsys):
        assert main(["fig4", "--system", "beluga", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "theta" in out

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--system", "beluga"]) == 0
        out = capsys.readouterr().out
        assert '"system": "beluga"' in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig4", "--system", "mars"])

"""Tests for the multi-resource max-min fair fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Fabric, Tracer
from repro.units import MiB, gbps, us


def simple_fabric(eng, **betas):
    fab = Fabric(eng)
    for name, beta in betas.items():
        fab.add_channel(name, alpha=0.0, beta=beta)
    return fab


class TestSingleChannel:
    def test_hockney_time_with_alpha(self):
        eng = Engine()
        fab = Fabric(eng)
        fab.add_channel("a", alpha=2 * us, beta=gbps(10))
        eng.run(until=fab.copy("a", 10 * MiB))
        assert eng.now == pytest.approx(2 * us + 10 * MiB / gbps(10), rel=1e-9)

    def test_two_flows_share(self):
        eng = Engine()
        fab = simple_fabric(eng, a=gbps(10))
        e1 = fab.copy("a", 10 * MiB)
        e2 = fab.copy("a", 10 * MiB)
        eng.run(until=eng.all_of([e1, e2]))
        assert eng.now == pytest.approx(2 * 10 * MiB / gbps(10), rel=1e-6)

    def test_zero_bytes_latency_only(self):
        eng = Engine()
        fab = Fabric(eng)
        fab.add_channel("a", alpha=3 * us, beta=gbps(1))
        eng.run(until=fab.copy("a", 0))
        assert eng.now == pytest.approx(3 * us)

    def test_unknown_channel_rejected(self):
        eng = Engine()
        fab = simple_fabric(eng, a=gbps(1))
        with pytest.raises(KeyError):
            fab.copy("nope", 1)

    def test_duplicate_channel_rejected(self):
        eng = Engine()
        fab = simple_fabric(eng, a=gbps(1))
        with pytest.raises(ValueError):
            fab.add_channel("a", 0.0, gbps(1))

    def test_empty_channel_list_rejected(self):
        eng = Engine()
        fab = simple_fabric(eng, a=gbps(1))
        with pytest.raises(ValueError):
            fab.copy([], 1)


class TestMultiChannelFlows:
    def test_rate_is_bottleneck(self):
        """A flow crossing PCIe(10) and DRAM(40) runs at 10."""
        eng = Engine()
        fab = simple_fabric(eng, pcie=gbps(10), dram=gbps(40))
        eng.run(until=fab.copy(["pcie", "dram"], 10 * MiB))
        assert eng.now == pytest.approx(10 * MiB / gbps(10), rel=1e-6)

    def test_latency_sums_over_channels(self):
        eng = Engine()
        fab = Fabric(eng)
        fab.add_channel("x", alpha=1 * us, beta=gbps(10))
        fab.add_channel("y", alpha=2 * us, beta=gbps(10))
        eng.run(until=fab.copy(["x", "y"], 0))
        assert eng.now == pytest.approx(3 * us)

    def test_shared_middle_resource_contention(self):
        """Two flows with disjoint edges but a shared middle channel.

        flow1: a(20) + shared(10); flow2: b(20) + shared(10).
        Max-min: shared saturates first at 5 each => both run at 5.
        """
        eng = Engine()
        fab = simple_fabric(eng, a=gbps(20), b=gbps(20), shared=gbps(10))
        e1 = fab.copy(["a", "shared"], 10 * MiB)
        e2 = fab.copy(["b", "shared"], 10 * MiB)
        eng.run(until=eng.all_of([e1, e2]))
        assert eng.now == pytest.approx(10 * MiB / gbps(5), rel=1e-6)

    def test_max_min_unbalanced(self):
        """One constrained flow frees capacity for an unconstrained one.

        flow1 crosses narrow(2)+wide(10); flow2 crosses wide(10) only.
        Max-min: flow1 frozen at 2 (narrow), flow2 gets 10-2=8.
        """
        eng = Engine()
        fab = simple_fabric(eng, narrow=gbps(2), wide=gbps(10))
        e1 = fab.copy(["narrow", "wide"], 2 * MiB)
        e2 = fab.copy(["wide"], 8 * MiB)
        eng.run(until=eng.all_of([e1, e2]))
        # Both finish at the same instant: 2MiB/2GBps == 8MiB/8GBps == 1 MiB/GBps
        assert e1.value.end == pytest.approx(2 * MiB / gbps(2), rel=1e-6)
        assert e2.value.end == pytest.approx(8 * MiB / gbps(8), rel=1e-6)

    def test_rates_readjust_on_departure(self):
        """After the short flow leaves, the long flow speeds up."""
        eng = Engine()
        beta = gbps(10)
        fab = simple_fabric(eng, a=beta)
        short = fab.copy("a", 5 * MiB)
        long = fab.copy("a", 15 * MiB)
        eng.run(until=eng.all_of([short, long]))
        # shared until short done at t1: each at 5GB/s, short needs 1ms-ish
        t1 = 5 * MiB / (beta / 2)
        # long has 15-5=10 MiB left at full rate
        t2 = t1 + 10 * MiB / beta
        assert short.value.end == pytest.approx(t1, rel=1e-6)
        assert long.value.end == pytest.approx(t2, rel=1e-6)


class TestDynamics:
    def test_set_beta(self):
        eng = Engine()
        beta = gbps(1)
        fab = simple_fabric(eng, a=beta)
        done = fab.copy("a", int(2 * beta))

        def degrade():
            yield eng.timeout(1.0)
            fab.set_beta("a", beta / 2)

        eng.process(degrade())
        eng.run(until=done)
        assert eng.now == pytest.approx(3.0, rel=1e-6)

    def test_stats_and_trace(self):
        eng = Engine()
        tracer = Tracer()
        fab = Fabric(eng, tracer=tracer)
        fab.add_channel("a", alpha=0.0, beta=gbps(1))
        eng.run(until=fab.copy("a", 4 * MiB, tag="t0"))
        ch = fab.channel("a")
        assert ch.total_bytes == pytest.approx(4 * MiB)
        assert ch.total_flows == 1
        assert ch.completed_bytes == pytest.approx(4 * MiB)
        assert ch.completed_flows == 1
        assert fab.flows_admitted == 1
        assert fab.flows_completed == 1
        assert tracer.records[0].tag == "t0"
        fab.reset_stats()
        assert fab.channel("a").total_bytes == 0
        assert fab.channel("a").completed_bytes == 0
        assert fab.flows_admitted == 0

    def test_busy_time_skips_rate_zero_channels(self):
        """Regression: ``_sync`` charged ``busy_time`` to every channel
        crossed by *any* active flow, including flows frozen at rate 0 —
        a channel moving no bytes is not busy."""
        eng = Engine()
        fab = simple_fabric(eng, a=gbps(1), b=gbps(1))
        live = fab.copy("a", int(gbps(1)))  # 1 second of work on `a`
        fab.copy("b", int(gbps(1)), tag="frozen")
        eng.run(until=1e-9)  # both admitted, nothing moved yet
        fab.stall_channel("b")  # freezes the `b` flow at rate 0
        eng.run(until=live)
        assert fab.channel("a").busy_time == pytest.approx(1.0, rel=1e-6)
        assert fab.channel("a").total_bytes == pytest.approx(gbps(1), rel=1e-6)
        # `b` accrued nothing while stalled at rate 0
        assert fab.channel("b").busy_time == pytest.approx(0.0, abs=1e-6)
        assert fab.channel("b").total_bytes == pytest.approx(0.0, abs=10.0)

    def test_completed_bytes_match_tracer_totals(self):
        """Per-channel completion accounting uses the same primary-channel
        attribution as the tracer, so the two byte counts agree exactly."""
        eng = Engine()
        tracer = Tracer()
        fab = Fabric(eng, tracer=tracer)
        fab.add_channel("a", alpha=0.0, beta=gbps(2))
        fab.add_channel("b", alpha=0.0, beta=gbps(1))
        done = [
            fab.copy(("a", "b"), 4 * MiB, tag="t0"),  # primary: a
            fab.copy("b", 2 * MiB, tag="t1"),
            fab.copy("a", MiB, tag="t2"),
        ]
        eng.run(until=eng.all_of(done))
        for name in ("a", "b"):
            assert fab.channel(name).completed_bytes == pytest.approx(
                tracer.total_bytes(name)
            )


class TestFabricProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=MiB, max_value=32 * MiB), min_size=1, max_size=5
        ),
        nshared=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds(self, sizes, nshared):
        """Work conservation on the shared bottleneck channel."""
        eng = Engine()
        beta = gbps(8)
        fab = simple_fabric(
            eng, **{f"edge{i}": gbps(100) for i in range(len(sizes))}, hub=beta
        )
        events = [
            fab.copy([f"edge{i}", "hub"], s) for i, s in enumerate(sizes)
        ]
        eng.run(until=eng.all_of(events))
        # hub is the bottleneck for every flow and never idles:
        assert eng.now == pytest.approx(sum(sizes) / beta, rel=1e-6)

    @given(
        sizes=st.lists(
            st.integers(min_value=MiB, max_value=16 * MiB), min_size=2, max_size=4
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_disjoint_flows_independent(self, sizes):
        """Flows on disjoint channels don't affect each other."""
        eng = Engine()
        beta = gbps(5)
        fab = simple_fabric(eng, **{f"c{i}": beta for i in range(len(sizes))})
        events = [fab.copy(f"c{i}", s) for i, s in enumerate(sizes)]
        eng.run(until=eng.all_of(events))
        for ev, s in zip(events, sizes):
            assert ev.value.duration == pytest.approx(s / beta, rel=1e-6)

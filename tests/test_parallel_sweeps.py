"""Parallel sweep runner + calibration cache: determinism and reuse.

A sweep fanned across worker processes must be byte-identical to the
serial run, and the calibration cache must return float-exact parameter
stores on both memo and disk hits.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.calibrate import (
    cache_stats,
    calibrate_cached,
    calibration_cache_key,
    clear_calibration_memo,
)
from repro.bench.experiments import run_fig5
from repro.bench.parallel import default_jobs, parallel_map, task_seed
from repro.bench.runner import clear_caches, get_setup
from repro.topology import systems
from repro.units import MiB

QUICK = dict(
    systems=("beluga",),
    paths_labels=("2_GPUs", "3_GPUs"),
    windows=(1, 4),
    sizes=[4 * MiB, 16 * MiB],
    iterations=2,
    warmup=1,
    grid_steps=4,
    chunk_menu=(1, 8),
)


def _square(x: int) -> int:
    return x * x


def _pid_and_square(x: int) -> tuple[int, int]:
    return os.getpid(), x * x


class TestParallelMap:
    def test_serial_matches_inline_loop(self):
        xs = list(range(20))
        assert parallel_map(_square, xs) == [x * x for x in xs]
        assert parallel_map(_square, xs, jobs=1) == [x * x for x in xs]

    def test_parallel_preserves_task_order(self):
        xs = list(range(20))
        assert parallel_map(_square, xs, jobs=3) == [x * x for x in xs]

    def test_workers_are_separate_processes(self):
        import multiprocessing

        results = parallel_map(_pid_and_square, list(range(8)), jobs=2)
        assert [sq for _, sq in results] == [x * x for x in range(8)]
        try:
            multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - serial fallback platform
            return
        assert os.getpid() not in {pid for pid, _ in results}

    def test_empty_and_single_task(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [7], jobs=4) == [49]

    def test_task_seed_stable_and_distinct(self):
        s1 = task_seed(0, "fig5", "beluga", 4 * MiB)
        assert s1 == task_seed(0, "fig5", "beluga", 4 * MiB)
        assert s1 != task_seed(0, "fig5", "beluga", 16 * MiB)
        assert s1 != task_seed(1, "fig5", "beluga", 4 * MiB)

    def test_default_jobs_positive(self):
        assert 1 <= default_jobs() <= 8


class TestSweepDeterminism:
    def test_fig5_serial_rerun_identical(self):
        clear_caches()
        first = run_fig5(**QUICK).render()
        clear_caches()
        second = run_fig5(**QUICK).render()
        assert first == second

    def test_fig5_parallel_identical_to_serial(self):
        clear_caches()
        serial = run_fig5(**QUICK).render()
        clear_caches()
        parallel = run_fig5(**QUICK, jobs=4).render()
        assert serial == parallel


class TestCalibrationCache:
    def test_memo_hit_is_float_exact(self):
        clear_caches()
        topo = systems.by_name("beluga")
        first = calibrate_cached(topo)
        assert cache_stats["misses"] == 1
        second = calibrate_cached(topo)
        assert cache_stats["memo_hits"] == 1
        assert second.to_json() == first.to_json()
        assert second is not first  # fresh copy: mutation-safe

    def test_disk_round_trip(self, tmp_path):
        clear_caches()
        topo = systems.by_name("beluga")
        first = calibrate_cached(topo, cache_dir=tmp_path)
        files = list(tmp_path.glob("cal_beluga_*.json"))
        assert len(files) == 1
        clear_calibration_memo()  # force the disk path
        second = calibrate_cached(topo, cache_dir=tmp_path)
        assert cache_stats["disk_hits"] == 1
        assert cache_stats["misses"] == 0
        assert second.to_json() == first.to_json()

    def test_corrupt_disk_entry_recalibrates(self, tmp_path):
        clear_caches()
        topo = systems.by_name("beluga")
        first = calibrate_cached(topo, cache_dir=tmp_path)
        path = next(tmp_path.glob("cal_beluga_*.json"))
        path.write_text("{not json")
        clear_calibration_memo()
        second = calibrate_cached(topo, cache_dir=tmp_path)
        assert cache_stats["misses"] == 1
        assert second.to_json() == first.to_json()

    def test_key_covers_all_inputs(self):
        _, base = calibration_cache_key("beluga")
        assert base == calibration_cache_key("beluga")[1]
        assert base != calibration_cache_key("narval")[1]
        assert base != calibration_cache_key("beluga", jitter_seed=1)[1]
        assert base != calibration_cache_key("beluga", jitter_sigma=0.01)[1]
        assert base != calibration_cache_key("beluga", sizes=[4 * MiB])[1]
        assert base != calibration_cache_key("beluga", phi_window=[MiB])[1]

    def test_mutating_a_cached_store_does_not_pollute(self):
        clear_caches()
        topo = systems.by_name("beluga")
        store = calibrate_cached(topo)
        baseline = store.to_json()
        store.default_phi = 0.999
        store.launch_overhead = 123.0
        assert calibrate_cached(topo).to_json() == baseline

    def test_get_setup_uses_shared_memo(self):
        clear_caches()
        setup = get_setup("beluga")
        clear_caches()
        again = get_setup("beluga")
        assert again.store.to_json() == setup.store.to_json()
        assert again is not setup


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))

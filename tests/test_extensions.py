"""Tests for the windowed steady-state model and the collective model."""

import math

import pytest

from repro.bench.baselines import dynamic_config
from repro.bench.collectives import COLLECTIVES
from repro.bench.env import BenchEnvironment
from repro.bench.omb import osu_bw, osu_collective_latency
from repro.core.collective_model import CollectiveModel
from repro.core.planner import PathPlanner
from repro.core.window_model import (
    asymptotic_bandwidth,
    predict_windowed_bandwidth,
    windowed_bandwidth,
    windowed_time,
)
from repro.topology import systems
from repro.units import MiB


@pytest.fixture(scope="module")
def beluga():
    return systems.beluga()


@pytest.fixture(scope="module")
def planner(beluga):
    return PathPlanner(beluga)


class TestWindowModel:
    def test_w1_matches_base_prediction(self, planner):
        plan = planner.plan(0, 1, 16 * MiB, include_host=False)
        assert windowed_time(plan, 1) == pytest.approx(plan.predicted_time)

    def test_bandwidth_grows_with_window(self, planner):
        plan = planner.plan(0, 1, 4 * MiB, include_host=False)
        bws = [windowed_bandwidth(plan, w) for w in (1, 2, 4, 16, 64)]
        assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))
        assert bws[-1] < asymptotic_bandwidth(plan)

    def test_window_prediction_tracks_measurement(self, beluga, planner):
        """The windowed prediction follows the measured window gain: the
        matching-window relative error shrinks as the window grows (the
        quantitative content of Observation 2), and both prediction and
        measurement rise with the window."""
        n = 2 * MiB
        env = BenchEnvironment(beluga, config=dynamic_config(include_host=False))
        errors = {}
        prev_meas = prev_pred = 0.0
        for w in (1, 16):
            measured = osu_bw(env, n, window=w, iterations=3).bandwidth
            predicted = predict_windowed_bandwidth(
                planner, 0, 1, n, w, include_host=False
            )
            errors[w] = abs(predicted - measured) / measured
            assert measured > prev_meas and predicted > prev_pred
            prev_meas, prev_pred = measured, predicted
        assert errors[16] < errors[1]

    def test_validation(self, planner):
        plan = planner.plan(0, 1, 4 * MiB)
        with pytest.raises(ValueError):
            windowed_time(plan, 0)

    def test_asymptote_is_upper_bound(self, planner):
        plan = planner.plan(0, 1, 64 * MiB, include_host=False)
        assert windowed_bandwidth(plan, 1000) <= asymptotic_bandwidth(plan)


class TestCollectiveModel:
    def test_allreduce_structure(self, planner):
        model = CollectiveModel(planner)
        pred = model.allreduce(4, 32 * MiB)
        assert pred.steps == 2 * int(math.log2(4))
        assert pred.predicted_time > 0
        assert pred.compute_time > 0

    def test_alltoall_structure(self, planner):
        model = CollectiveModel(planner)
        pred = model.alltoall(4, 32 * MiB)
        assert pred.steps == 2
        assert pred.compute_time == 0.0

    def test_validation(self, planner):
        model = CollectiveModel(planner)
        with pytest.raises(ValueError):
            model.allreduce(3, 1024)
        with pytest.raises(ValueError):
            model.alltoall(4, 0)
        with pytest.raises(ValueError):
            model.speedup_over_single_path("bcast", 4, 1024)
        with pytest.raises(ValueError):
            CollectiveModel(planner, reduce_bandwidth=0)

    @pytest.mark.parametrize("collective", ["allreduce", "alltoall"])
    def test_prediction_within_band_of_simulator(self, beluga, planner, collective):
        """Predicted latency within ~35% of the simulated collective
        (the model ignores cross-step pipelining and barrier costs)."""
        n = 16 * MiB
        model = CollectiveModel(planner, include_host=False)
        pred = model._predict(collective, 4, n)
        env = BenchEnvironment(beluga, config=dynamic_config(include_host=False))
        measured = osu_collective_latency(
            env, COLLECTIVES[collective], n, iterations=2
        ).latency
        assert pred.total == pytest.approx(measured, rel=0.35)

    def test_predicted_speedup_band_matches_paper(self, planner):
        """Predicted multi-path collective speedups land in the paper's
        1.1-1.7x band and Alltoall >= Allreduce."""
        model = CollectiveModel(planner, include_host=False)
        s_a2a = model.speedup_over_single_path("alltoall", 4, 32 * MiB)
        s_ar = model.speedup_over_single_path("allreduce", 4, 32 * MiB)
        assert 1.05 < s_ar < 2.0
        assert 1.05 < s_a2a < 2.2
        assert s_a2a >= s_ar * 0.95

    def test_compute_dampens_allreduce_speedup(self, planner):
        """Slower reduction kernels shrink Allreduce's multi-path gain —
        the mechanism behind §5.3 Observation 3."""
        fast = CollectiveModel(planner, reduce_bandwidth=1e12, include_host=False)
        slow = CollectiveModel(planner, reduce_bandwidth=50e9, include_host=False)
        s_fast = fast.speedup_over_single_path("allreduce", 4, 32 * MiB)
        s_slow = slow.speedup_over_single_path("allreduce", 4, 32 * MiB)
        assert s_slow < s_fast

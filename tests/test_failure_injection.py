"""Failure injection: degraded links, stragglers, degenerate topologies.

The planner and pipeline must stay correct (all bytes delivered, no
deadlock) when the fabric misbehaves, and the dynamic planner should keep
its advantage when re-planned with refreshed calibration.
"""

import numpy as np

from repro.bench.baselines import direct_config, dynamic_config
from repro.bench.calibrate import calibrate
from repro.bench.env import BenchEnvironment
from repro.bench.omb import osu_bw
from repro.core.params import LinkEstimate, ParameterStore
from repro.core.planner import PathPlanner
from repro.mpi import Communicator
from repro.sim import Engine, Tracer
from repro.sim.noise import BurstSlowdown
from repro.topology import systems
from repro.topology.links import CATALOG, LinkKind
from repro.topology.node import TopologyBuilder
from repro.ucx import UCXContext
from repro.units import MiB, gbps, us
from repro.util.rng import spawn_rng


class TestDegradedLink:
    def test_transfer_completes_under_mid_flight_degradation(self):
        eng = Engine()
        tracer = Tracer()
        ctx = UCXContext(eng, systems.beluga(), tracer=tracer)
        n = 128 * MiB
        plan = ctx.planner.plan(0, 1, n, include_host=False)
        done = ctx.pipeline.execute(plan, tag="D")

        def degrade():
            yield eng.timeout(200 * us)
            ctx.runtime.fabric.set_beta("nvl:0->1", gbps(5))  # direct link sick

        eng.process(degrade())
        eng.run(until=done)
        delivered = sum(
            r.nbytes for r in tracer.records if ":direct" in r.tag or ":h2:" in r.tag
        )
        assert delivered == n

    def test_replanning_with_degraded_calibration_shifts_shares(self):
        """If calibration says the direct link lost half its bandwidth, the
        planner moves data to the staged paths."""
        topo = systems.beluga()
        healthy = ParameterStore.ground_truth(topo)
        degraded = ParameterStore.ground_truth(topo)
        hop = topo.direct_hop(0, 1)
        est = healthy.link(hop)
        degraded.set_link(hop, LinkEstimate(alpha=est.alpha, beta=est.beta / 4))

        n = 128 * MiB
        theta_healthy = (
            PathPlanner(topo, healthy).plan(0, 1, n).assignment_for("direct").theta
        )
        theta_degraded = (
            PathPlanner(topo, degraded).plan(0, 1, n).assignment_for("direct").theta
        )
        assert theta_degraded < theta_healthy


class TestStragglers:
    def test_multipath_still_beats_direct_under_stragglers(self):
        topo = systems.beluga()

        def jitter_factory(cdef):
            return BurstSlowdown(
                spawn_rng(3, "straggler", cdef.name), prob=0.05, factor=2.5
            )

        multi = BenchEnvironment(
            topo, config=dynamic_config(include_host=False),
            jitter_factory=jitter_factory,
        )
        single = BenchEnvironment(
            topo, config=direct_config(), jitter_factory=jitter_factory
        )
        bm = osu_bw(multi, 256 * MiB, iterations=3)
        bs = osu_bw(single, 256 * MiB, iterations=3)
        assert bm.bandwidth > bs.bandwidth


class TestDegenerateTopologies:
    def make_two_gpu(self, alpha=0.0):
        b = TopologyBuilder("tiny", 2)
        spec = CATALOG[LinkKind.NVLINK2]
        b.add_gpu_link(0, 1, spec.scaled(latency_factor=0.0) if alpha == 0 else spec)
        for g in range(2):
            b.add_pcie(g, CATALOG[LinkKind.PCIE3])
        b.add_dram(0, CATALOG[LinkKind.DRAM])
        return b.build()

    def test_zero_latency_link(self):
        """alpha = 0 must not break the chunk-count formulas (div by 0)."""
        topo = self.make_two_gpu(alpha=0.0)
        plan = PathPlanner(topo).plan(0, 1, 64 * MiB)
        assert sum(a.nbytes for a in plan.assignments) == 64 * MiB

    def test_two_gpu_node_only_direct_and_host(self):
        topo = self.make_two_gpu()
        plan = PathPlanner(topo).plan(0, 1, 64 * MiB)
        ids = [a.path.path_id for a in plan.assignments]
        assert ids == ["direct", "host"]

    def test_calibrate_pcie_only_node(self):
        """Calibration must cope with a node that has no GPU links at all."""
        topo = systems.pcie_only(2)
        store = calibrate(topo)
        assert store.epsilon("host") > 0
        plan = PathPlanner(topo, store).plan(0, 1, 16 * MiB)
        assert plan.assignment_for("host").nbytes == 16 * MiB

    def test_mpi_on_two_gpu_node(self):
        topo = self.make_two_gpu()
        eng = Engine()
        ctx = UCXContext(eng, topo)
        comm = Communicator(ctx, size=2)
        out = {}

        def program(view):
            if view.rank == 0:
                yield from view.send(1, payload=np.arange(16.0))
            else:
                out["x"] = yield from view.recv(0)

        eng.run(until=comm.run_ranks(program))
        np.testing.assert_array_equal(out["x"], np.arange(16.0))


class TestPathExclusionResilience:
    def test_excluding_every_staged_path_collapses_to_direct(self):
        topo = systems.beluga()
        planner = PathPlanner(topo)
        plan = planner.plan(0, 1, 64 * MiB, exclude=("gpu:2", "gpu:3", "host"))
        assert plan.num_active_paths == 1
        assert plan.assignment_for("direct").nbytes == 64 * MiB

    def test_excluding_direct_forces_staged(self):
        topo = systems.beluga()
        planner = PathPlanner(topo)
        plan = planner.plan(0, 1, 64 * MiB, exclude=("direct",))
        ids = {a.path.path_id for a in plan.active_assignments}
        assert "direct" not in ids
        assert sum(a.nbytes for a in plan.assignments) == 64 * MiB

"""Tests for Semaphore and Store."""

import pytest

from repro.sim import Engine, Semaphore, Store


class TestSemaphore:
    def test_grants_up_to_capacity(self):
        eng = Engine()
        sem = Semaphore(eng, capacity=2)
        a = sem.acquire()
        b = sem.acquire()
        c = sem.acquire()
        assert a.triggered and b.triggered
        assert not c.triggered
        assert sem.available == 0

    def test_release_hands_to_waiter_fifo(self):
        eng = Engine()
        sem = Semaphore(eng, capacity=1)
        sem.acquire()
        w1 = sem.acquire()
        w2 = sem.acquire()
        sem.release()
        assert w1.triggered and not w2.triggered
        sem.release()
        assert w2.triggered

    def test_release_below_zero(self):
        eng = Engine()
        sem = Semaphore(eng, capacity=1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Semaphore(Engine(), 0)

    def test_max_in_use_stat(self):
        eng = Engine()
        sem = Semaphore(eng, capacity=3)
        for _ in range(3):
            sem.acquire()
        assert sem.max_in_use == 3
        assert sem.held() == 3

    def test_with_processes_serializes(self):
        eng = Engine()
        sem = Semaphore(eng, capacity=1)
        spans = []

        def worker(i):
            yield sem.acquire()
            start = eng.now
            yield eng.timeout(1.0)
            sem.release()
            spans.append((start, eng.now))

        procs = [eng.process(worker(i)) for i in range(3)]
        eng.run(until=eng.all_of(procs))
        assert eng.now == pytest.approx(3.0)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert s2 >= e1  # no overlap


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")
        ev = store.get()
        assert ev.triggered and ev.value == "a"

    def test_get_then_put(self):
        eng = Engine()
        store = Store(eng)
        ev = store.get()
        assert not ev.triggered
        store.put(42)
        assert ev.triggered and ev.value == 42

    def test_fifo_order(self):
        eng = Engine()
        store = Store(eng)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_match_predicate_skips_items(self):
        eng = Engine()
        store = Store(eng)
        store.put({"tag": 1})
        store.put({"tag": 2})
        ev = store.get(match=lambda m: m["tag"] == 2)
        assert ev.value == {"tag": 2}
        assert store.peek_all() == [{"tag": 1}]

    def test_matching_getter_waits_for_matching_item(self):
        eng = Engine()
        store = Store(eng)
        ev = store.get(match=lambda m: m > 10)
        store.put(5)
        assert not ev.triggered
        store.put(11)
        assert ev.triggered and ev.value == 11
        assert len(store) == 1  # the 5 is still buffered

    def test_getters_fifo(self):
        eng = Engine()
        store = Store(eng)
        g1 = store.get()
        g2 = store.get()
        store.put("x")
        assert g1.triggered and not g2.triggered

"""Tests for the MaxRate-style contention-aware extension."""

import numpy as np
import pytest

from repro.core.contention import (
    ContentionAwareModel,
    max_min_path_rates,
    usage_matrix,
)
from repro.topology import systems
from repro.topology.routing import enumerate_paths
from repro.units import MiB, gbps


class TestUsageMatrix:
    def test_beluga_direct_and_staged(self):
        topo = systems.beluga()
        paths = enumerate_paths(topo, 0, 1)
        channels, u = usage_matrix(paths)
        assert u.shape == (4, len(channels))
        # The host path crosses dram:0 in both hops -> usage 2.
        host_row = u[3]
        dram_col = channels.index("dram:0")
        assert host_row[dram_col] == 2

    def test_nvswitch_shared_ports(self):
        topo = systems.dgx_nvswitch(4)
        paths = enumerate_paths(topo, 0, 1, include_host=False)
        channels, u = usage_matrix(paths)
        up0 = channels.index("nvsw:0:up")
        # every path (direct and staged) leaves through GPU 0's uplink
        assert np.all(u[:, up0] >= 1)


class TestMaxMinPathRates:
    def test_disjoint_paths_full_capacity(self):
        u = np.eye(3)
        rates, saturated = max_min_path_rates([10.0, 20.0, 30.0], u)
        assert rates == pytest.approx([10.0, 20.0, 30.0])
        assert len(saturated) == 3

    def test_shared_channel_split(self):
        u = np.ones((2, 1))
        rates, _ = max_min_path_rates([10.0], u)
        assert rates == pytest.approx([5.0, 5.0])

    def test_double_usage_halves_rate(self):
        u = np.array([[2.0]])
        rates, _ = max_min_path_rates([10.0], u)
        assert rates == pytest.approx([5.0])

    def test_mixed_bottlenecks(self):
        # path0: private channel cap 4; path1: shares hub cap 10 with path0
        u = np.array([[1.0, 1.0], [0.0, 1.0]])
        rates, _ = max_min_path_rates([4.0, 10.0], u)
        # fill equally to 4 (private saturates path0), then path1 takes
        # hub leftover: 10 - 4 = 6.
        assert rates == pytest.approx([4.0, 6.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_min_path_rates([1.0], np.ones((1, 2)))


class TestContentionModel:
    def test_beluga_matches_naive_aggregate(self):
        """With disjoint NVLinks, contention awareness changes nothing:
        aggregate = 3 links + host path's PCIe floor."""
        model = ContentionAwareModel(systems.beluga())
        sol = model.solve(0, 1, include_host=False)
        assert sol.aggregate_bandwidth == pytest.approx(3 * gbps(46), rel=1e-6)

    def test_beluga_host_capped_by_pcie_and_dram(self):
        model = ContentionAwareModel(systems.beluga())
        sol = model.solve(0, 1, include_host=True)
        host_rate = sol.rates[list(sol.path_ids).index("host")]
        # DRAM usage 2 => at most 24/2 = 12; PCIe caps at 11.5.
        assert host_rate <= gbps(11.5) * 1.001

    def test_nvswitch_multipath_not_worthwhile(self):
        """The headline check: shared switch ports make splitting useless;
        the naive model misses this, the extension catches it."""
        model = ContentionAwareModel(systems.dgx_nvswitch(8))
        assert not model.multipath_worthwhile(0, 1, include_host=False)
        sol = model.solve(0, 1, include_host=False)
        # aggregate equals a single port's capacity
        assert sol.aggregate_bandwidth <= gbps(230) * 1.001

    def test_beluga_multipath_worthwhile(self):
        model = ContentionAwareModel(systems.beluga())
        assert model.multipath_worthwhile(0, 1, include_host=False)

    def test_bottleneck_reporting(self):
        model = ContentionAwareModel(systems.dgx_nvswitch(4))
        sol = model.solve(0, 1, include_host=False)
        assert any("nvsw:0:up" in b or "nvsw:1:down" in b for b in sol.bottlenecks)

    def test_predict_bandwidth_close_to_simulated(self):
        """Contention prediction on Beluga is within ~10% of the simulator
        for a large transfer (both use the same fluid allocation)."""
        from repro.bench.baselines import dynamic_config
        from repro.bench.env import BenchEnvironment
        from repro.bench.omb import osu_bw

        topo = systems.beluga()
        model = ContentionAwareModel(topo)
        predicted = model.predict_bandwidth(0, 1, 512 * MiB, include_host=False)
        env = BenchEnvironment(topo, config=dynamic_config(include_host=False))
        measured = osu_bw(env, 512 * MiB, iterations=2).bandwidth
        assert predicted == pytest.approx(measured, rel=0.12)

    def test_predict_time_validation(self):
        model = ContentionAwareModel(systems.beluga())
        with pytest.raises(ValueError):
            model.predict_time(0, 1, 0)

    def test_describe(self):
        model = ContentionAwareModel(systems.beluga())
        text = model.solve(0, 1).describe()
        assert "aggregate=" in text and "direct" in text

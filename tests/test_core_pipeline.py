"""Tests for the pipelining model (Eqs. 12-18), chunk optimisation, and
the φ linearisation (Eqs. 19-22)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import (
    chunking_ratio,
    effective_params,
    fit_phi,
    fit_phi_for_sizes,
    linear_chunks,
    linearization_error,
)
from repro.core.params import PathParams
from repro.core.pipeline_model import (
    chunk_time,
    optimal_chunks,
    optimal_chunks_exact,
    pipelined_time,
    pipelined_time_at_optimum,
)
from repro.units import MiB, gbps, us


def staged(a1=2.5 * us, b1=gbps(46), eps=4 * us, a2=2.5 * us, b2=gbps(46), pid="s"):
    return PathParams(
        path_id=pid, alpha1=a1, beta1=b1, epsilon=eps, alpha2=a2, beta2=b2
    )


CASE1 = staged(b1=gbps(10), b2=gbps(40), pid="case1")  # first link bottleneck
CASE2 = staged(b1=gbps(40), b2=gbps(10), pid="case2")  # second link bottleneck
SYM = staged(pid="sym")


class TestChunkTime:
    def test_eq12(self):
        n = 64 * MiB
        k = 8
        t = chunk_time(SYM, 0.5, n, k)
        chunk = 0.5 * n / k
        expected = (
            2.5 * us + chunk / gbps(46) + 4 * us + 2.5 * us + chunk / gbps(46)
        )
        assert t == pytest.approx(expected)

    def test_direct_path_rejected(self):
        d = PathParams(path_id="d", alpha1=1 * us, beta1=gbps(46))
        with pytest.raises(ValueError, match="direct"):
            chunk_time(d, 0.5, 100, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            pipelined_time(SYM, 0.5, 100, 0)


class TestPipelinedTime:
    def test_case1_formula(self):
        """beta1 < beta2: k startups on the first link + one trailing hop."""
        n, k, theta = 64 * MiB, 8, 1.0
        chunk = theta * n / k
        expected = (
            k * (CASE1.alpha1 + chunk / CASE1.beta1)
            + CASE1.epsilon
            + CASE1.alpha2
            + chunk / CASE1.beta2
        )
        assert pipelined_time(CASE1, theta, n, k) == pytest.approx(expected)

    def test_case2_formula(self):
        n, k, theta = 64 * MiB, 8, 1.0
        chunk = theta * n / k
        expected = (
            CASE2.alpha1
            + chunk / CASE2.beta1
            + k * (CASE2.epsilon + CASE2.alpha2 + chunk / CASE2.beta2)
        )
        assert pipelined_time(CASE2, theta, n, k) == pytest.approx(expected)

    def test_pipelining_beats_store_and_forward(self):
        """With a good k, pipelining beats the k=1 staged transfer."""
        n = 64 * MiB
        k = optimal_chunks(CASE1, 1.0, n)
        assert pipelined_time(CASE1, 1.0, n, k) < pipelined_time(CASE1, 1.0, n, 1)

    def test_zero_theta(self):
        assert pipelined_time(SYM, 0.0, 64 * MiB, 4) == 0.0


class TestOptimalChunks:
    def test_eq14_case1(self):
        n, theta = 64 * MiB, 0.5
        k = optimal_chunks_exact(CASE1, theta, n)
        assert k == pytest.approx(
            math.sqrt(theta * n / (CASE1.alpha1 * CASE1.beta2))
        )

    def test_eq15_case2(self):
        n, theta = 64 * MiB, 0.5
        k = optimal_chunks_exact(CASE2, theta, n)
        assert k == pytest.approx(
            math.sqrt(theta * n / (CASE2.beta1 * (CASE2.epsilon + CASE2.alpha2)))
        )

    def test_integer_neighbor_is_discrete_minimum(self):
        """floor/ceil of k* beats k*±2 for both cases."""
        n = 128 * MiB
        for params in (CASE1, CASE2, SYM):
            k = optimal_chunks(params, 1.0, n)
            t_best = pipelined_time(params, 1.0, n, k)
            for other in (max(1, k - 2), k + 2):
                assert t_best <= pipelined_time(params, 1.0, n, other) + 1e-15

    def test_chunks_grow_with_message_size(self):
        k_small = optimal_chunks(SYM, 1.0, 4 * MiB)
        k_large = optimal_chunks(SYM, 1.0, 256 * MiB)
        assert k_large > k_small

    def test_max_chunks_clamp(self):
        k = optimal_chunks(SYM, 1.0, 512 * MiB, max_chunks=4)
        assert k <= 4

    @given(
        n_mib=st.integers(min_value=2, max_value=512),
        theta_pct=st.integers(min_value=5, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_k_minimizes_continuous_time(self, n_mib, theta_pct):
        """T(k*) <= T(k*·1.3) and T(k*/1.3) — k* is a local continuum min."""
        n = n_mib * MiB
        theta = theta_pct / 100
        for params in (CASE1, CASE2):
            k_star = optimal_chunks_exact(params, theta, n)
            if k_star < 1:
                continue

            def t(k):
                # continuous-k version of Eq. (13)
                chunk = theta * n / k
                if params.beta1 < params.beta2:
                    return (
                        k * (params.alpha1 + chunk / params.beta1)
                        + params.epsilon + params.alpha2 + chunk / params.beta2
                    )
                return (
                    params.alpha1 + chunk / params.beta1
                    + k * (params.epsilon + params.alpha2 + chunk / params.beta2)
                )

            assert t(k_star) <= t(k_star * 1.3) + 1e-15
            assert t(k_star) <= t(k_star / 1.3) + 1e-15


class TestTimeAtOptimum:
    def test_eq17_matches_substitution_case1(self):
        n, theta = 64 * MiB, 0.5
        k_star = optimal_chunks_exact(CASE1, theta, n)
        chunk = theta * n / k_star
        by_substitution = (
            k_star * (CASE1.alpha1 + chunk / CASE1.beta1)
            + CASE1.epsilon + CASE1.alpha2 + chunk / CASE1.beta2
        )
        assert pipelined_time_at_optimum(CASE1, theta, n) == pytest.approx(
            by_substitution
        )

    def test_eq18_matches_substitution_case2(self):
        n, theta = 64 * MiB, 0.5
        k_star = optimal_chunks_exact(CASE2, theta, n)
        chunk = theta * n / k_star
        by_substitution = (
            CASE2.alpha1 + chunk / CASE2.beta1
            + k_star * (CASE2.epsilon + CASE2.alpha2 + chunk / CASE2.beta2)
        )
        assert pipelined_time_at_optimum(CASE2, theta, n) == pytest.approx(
            by_substitution
        )

    def test_optimum_lower_bounds_integer_k(self):
        n = 64 * MiB
        for params in (CASE1, CASE2, SYM):
            k = optimal_chunks(params, 1.0, n)
            assert pipelined_time_at_optimum(params, 1.0, n) <= pipelined_time(
                params, 1.0, n, k
            ) * (1 + 1e-12)


class TestPhiLinearisation:
    def test_fit_phi_single_point(self):
        # For a single x, sqrt(x) = phi*x => phi = 1/sqrt(x)
        assert fit_phi([16.0]) == pytest.approx(0.25)

    def test_fit_phi_validation(self):
        with pytest.raises(ValueError):
            fit_phi([])
        with pytest.raises(ValueError):
            fit_phi([1.0, -1.0])

    def test_linear_chunks_tracks_exact_at_anchor(self):
        """At the fitted reference size, linear k is close to exact k."""
        n = 64 * MiB
        phi = fit_phi([chunking_ratio(SYM, 0.25, n)])
        k_lin = linear_chunks(SYM, 0.25, n, phi)
        k_exact = optimal_chunks_exact(SYM, 0.25, n)
        assert abs(k_lin - k_exact) <= 1.0

    def test_linearization_error_zero_at_anchor(self):
        n = 64 * MiB
        phi = fit_phi([chunking_ratio(SYM, 0.25, n)])
        assert linearization_error(SYM, 0.25, n, phi) < 0.01

    def test_effective_params_direct(self):
        d = PathParams(path_id="d", alpha1=2 * us, beta1=gbps(46))
        eff = effective_params(d)
        assert eff.omega == pytest.approx(1 / gbps(46))
        assert eff.delta == pytest.approx(2 * us)
        assert eff.phi is None

    def test_effective_params_case1(self):
        phi = 0.05
        eff = effective_params(CASE1, phi)
        assert eff.case1 is True
        assert eff.omega == pytest.approx(1 / CASE1.beta1 + phi / CASE1.beta2)
        assert eff.delta == pytest.approx(
            CASE1.epsilon + CASE1.alpha2 + CASE1.alpha1 / phi
        )

    def test_effective_params_case2(self):
        phi = 0.05
        eff = effective_params(CASE2, phi)
        assert eff.case1 is False
        assert eff.omega == pytest.approx(phi / CASE2.beta1 + 1 / CASE2.beta2)
        assert eff.delta == pytest.approx(
            CASE2.alpha1 + (CASE2.epsilon + CASE2.alpha2) / phi
        )

    def test_effective_params_no_phi_falls_back_to_eq11(self):
        eff = effective_params(SYM, None)
        assert eff.omega == pytest.approx(SYM.Omega)
        assert eff.delta == pytest.approx(SYM.Delta)

    def test_effective_time_matches_eq20(self):
        """θnΩ + Δ must equal Eq. (20) expanded by hand."""
        phi = 0.08
        n, theta = 128 * MiB, 0.4
        eff = effective_params(CASE1, phi)
        t_eff = theta * n * eff.omega + eff.delta
        expected = (
            theta * n * (1 / CASE1.beta1 + phi / CASE1.beta2)
            + CASE1.epsilon + CASE1.alpha2 + CASE1.alpha1 / phi
        )
        assert t_eff == pytest.approx(expected)

    def test_fit_phi_for_sizes(self):
        sizes = [2 ** i * MiB for i in range(1, 10)]
        phi = fit_phi_for_sizes(SYM, sizes)
        assert phi > 0
        # phi ~ 1/sqrt(x) for the dominant (large) sizes in the window.
        x_big = chunking_ratio(SYM, 0.25, sizes[-1])
        assert phi == pytest.approx(1 / math.sqrt(x_big), rel=1.0)

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            linear_chunks(SYM, 0.5, 100, 0.0)
        with pytest.raises(ValueError):
            effective_params(SYM, -1.0)

    @given(
        n_mib=st.integers(min_value=2, max_value=512),
    )
    @settings(max_examples=30, deadline=None)
    def test_linear_chunks_bounded(self, n_mib):
        phi = fit_phi_for_sizes(SYM, [2 ** i * MiB for i in range(1, 10)])
        k = linear_chunks(SYM, 0.3, n_mib * MiB, phi, max_chunks=64)
        assert 1 <= k <= 64

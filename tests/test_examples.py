"""Smoke tests: every example script runs clean and prints its headline."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 360) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "speedup over direct" in out
        assert "prediction error" in out

    def test_ddp_gradient_sync(self):
        out = run_example("ddp_gradient_sync.py")
        assert "beluga" in out and "narval" in out
        assert "speedup" in out

    def test_topology_explorer(self):
        out = run_example("topology_explorer.py")
        assert "crossover" in out

    def test_future_systems(self):
        out = run_example("future_systems.py")
        assert "multipath worthwhile? False" in out
        assert "xGMI ring" in out

    def test_multinode_rails(self):
        out = run_example("multinode_rails.py")
        assert "pcie_capped" in out
        assert "yes" in out

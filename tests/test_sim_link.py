"""Unit and property tests for fair-share channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Engine, Tracer
from repro.sim.noise import SizeDependentEfficiency
from repro.units import MiB, gbps, us


def make_channel(eng, alpha=1 * us, beta=gbps(10), **kw):
    return Channel(eng, "test", alpha, beta, **kw)


class TestSingleTransfer:
    def test_hockney_time(self):
        eng = Engine()
        ch = make_channel(eng, alpha=2 * us, beta=gbps(10))
        done = ch.transfer(10 * MiB)
        result = eng.run(until=done)
        expected = 2 * us + 10 * MiB / gbps(10)
        assert eng.now == pytest.approx(expected, rel=1e-9)
        assert result.nbytes == 10 * MiB
        assert result.duration == pytest.approx(expected)

    def test_zero_bytes_is_latency_only(self):
        eng = Engine()
        ch = make_channel(eng, alpha=5 * us)
        result = eng.run(until=ch.transfer(0))
        assert eng.now == pytest.approx(5 * us)
        assert result.nbytes == 0

    def test_skip_latency(self):
        eng = Engine()
        ch = make_channel(eng, alpha=100 * us, beta=gbps(1))
        eng.run(until=ch.transfer(1 * MiB, skip_latency=True))
        assert eng.now == pytest.approx(1 * MiB / gbps(1))

    def test_negative_size_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            make_channel(eng).transfer(-1)

    def test_invalid_params_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Channel(eng, "x", -1.0, 1.0)
        with pytest.raises(ValueError):
            Channel(eng, "x", 0.0, 0.0)
        with pytest.raises(ValueError):
            make_channel(eng).transfer(1, weight=0)


class TestFairShare:
    def test_two_equal_flows_halve_bandwidth(self):
        eng = Engine()
        ch = make_channel(eng, alpha=0.0, beta=gbps(10))
        d1 = ch.transfer(10 * MiB)
        d2 = ch.transfer(10 * MiB)
        eng.run(until=eng.all_of([d1, d2]))
        # Both flows share: each effectively gets 5 GB/s -> 2x single time.
        assert eng.now == pytest.approx(2 * 10 * MiB / gbps(10), rel=1e-6)

    def test_staggered_flows_progressive_filling(self):
        # Flow A starts alone, then B joins; A finishes first having had a
        # solo head start, then B runs alone again.
        eng = Engine()
        beta = gbps(1)
        ch = make_channel(eng, alpha=0.0, beta=beta)
        results = {}

        def start_b():
            yield eng.timeout(0.5)
            r = yield ch.transfer(1 * gbps(1))  # 1 second of bytes
            results["b"] = r

        def start_a():
            r = yield ch.transfer(1 * gbps(1))
            results["a"] = r

        eng.process(start_a())
        eng.process(start_b())
        eng.run()
        # A: 0.5s solo (0.5 of work) + shared until done: remaining 0.5 work
        # at rate 0.5 -> 1.0s more => ends at 1.5s.
        assert results["a"].end == pytest.approx(1.5, rel=1e-6)
        # B: from 0.5 to 1.5 shared (0.5 work done), then solo 0.5 work
        # at full rate -> ends at 2.0s.
        assert results["b"].end == pytest.approx(2.0, rel=1e-6)

    def test_weighted_share(self):
        eng = Engine()
        ch = make_channel(eng, alpha=0.0, beta=gbps(10))
        heavy = ch.transfer(10 * MiB, weight=3.0)
        light = ch.transfer(10 * MiB, weight=1.0)
        eng.run(until=eng.all_of([heavy, light]))
        rh = heavy.value
        rl = light.value
        assert rh.end < rl.end  # heavier weight finishes first

    def test_conservation_of_bytes(self):
        eng = Engine()
        ch = make_channel(eng)
        sizes = [1 * MiB, 3 * MiB, 7 * MiB, 2 * MiB]
        events = [ch.transfer(s) for s in sizes]
        eng.run(until=eng.all_of(events))
        assert ch.total_bytes == pytest.approx(sum(sizes))
        assert ch.total_transfers == len(sizes)

    def test_max_concurrency_tracked(self):
        eng = Engine()
        ch = make_channel(eng, alpha=0.0)
        for _ in range(5):
            ch.transfer(10 * MiB)
        eng.run()
        assert ch.max_concurrency == 5


class TestDynamicBandwidth:
    def test_set_beta_mid_flight(self):
        eng = Engine()
        beta = gbps(1)
        ch = make_channel(eng, alpha=0.0, beta=beta)
        done = ch.transfer(int(2 * beta))  # 2 seconds at full rate

        def degrade():
            yield eng.timeout(1.0)
            ch.set_beta(beta / 2)  # halve bandwidth halfway through

        eng.process(degrade())
        eng.run(until=done)
        # 1s at full rate (half done) + remaining half at half rate = 2s more.
        assert eng.now == pytest.approx(3.0, rel=1e-6)

    def test_set_beta_invalid(self):
        eng = Engine()
        with pytest.raises(ValueError):
            make_channel(eng).set_beta(0)


class TestJitterAndTrace:
    def test_size_dependent_efficiency_slows_small_messages(self):
        eng = Engine()
        knee = 256 * 1024
        ch = make_channel(
            eng, alpha=0.0, beta=gbps(1), jitter=SizeDependentEfficiency(knee)
        )
        small = ch.transfer(knee)
        eng.run(until=small)
        # demand doubled: knee bytes * (1 + knee/knee) = 2*knee
        assert eng.now == pytest.approx(2 * knee / gbps(1), rel=1e-6)

    def test_tracer_records(self):
        eng = Engine()
        tracer = Tracer()
        ch = Channel(eng, "nvlink", 1 * us, gbps(10), tracer=tracer)
        eng.run(until=ch.transfer(1 * MiB, tag="chunk0"))
        assert len(tracer.records) == 1
        rec = tracer.records[0]
        assert rec.channel == "nvlink"
        assert rec.tag == "chunk0"
        assert rec.nbytes == 1 * MiB
        assert rec.duration > 0

    def test_utilization(self):
        eng = Engine()
        ch = make_channel(eng, alpha=0.0, beta=gbps(1))
        done = ch.transfer(int(gbps(1)))  # exactly 1 second busy

        def idle_tail():
            yield done
            yield eng.timeout(1.0)

        eng.run(until=eng.process(idle_tail()))
        assert ch.utilization() == pytest.approx(0.5, rel=1e-6)


class TestFairShareProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=1 * MiB, max_value=64 * MiB), min_size=1, max_size=6
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_concurrent_completion_bounded_by_serial_and_ideal(self, sizes):
        """max(sizes)/beta <= makespan <= sum(sizes)/beta for alpha=0."""
        eng = Engine()
        beta = gbps(10)
        ch = Channel(eng, "p", 0.0, beta)
        events = [ch.transfer(s) for s in sizes]
        eng.run(until=eng.all_of(events))
        lower = max(sizes) / beta
        upper = sum(sizes) / beta
        assert lower * (1 - 1e-9) <= eng.now <= upper * (1 + 1e-9)

    @given(
        sizes=st.lists(
            st.integers(min_value=1 * MiB, max_value=64 * MiB), min_size=2, max_size=6
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, sizes):
        """With all flows started at t=0, makespan == total work / beta."""
        eng = Engine()
        beta = gbps(10)
        ch = Channel(eng, "p", 0.0, beta)
        events = [ch.transfer(s) for s in sizes]
        eng.run(until=eng.all_of(events))
        # The channel is never idle until everything finishes.
        assert eng.now == pytest.approx(sum(sizes) / beta, rel=1e-6)

    @given(
        sizes=st.lists(
            st.integers(min_value=1 * MiB, max_value=32 * MiB), min_size=2, max_size=5
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_smaller_flows_finish_no_later(self, sizes):
        """Under equal-share, completion order follows size order."""
        eng = Engine()
        ch = Channel(eng, "p", 0.0, gbps(10))
        events = [ch.transfer(s) for s in sizes]
        eng.run(until=eng.all_of(events))
        ends = [ev.value.end for ev in events]
        order = sorted(range(len(sizes)), key=lambda i: sizes[i])
        for earlier, later in zip(order, order[1:]):
            assert ends[earlier] <= ends[later] + 1e-12

"""Tests for the Hockney model, multi-path composition, and optimizer.

These tests check the paper's algebra directly:
* Eq. (8) == Eq. (11) specialised to direct paths;
* equal-time property of the closed-form solution (Theorem 1);
* drop rule for small messages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hockney import HockneyModel, MultiPathModel, path_time, validate_fractions
from repro.core.optimizer import optimal_fractions, solve_equal_time
from repro.core.params import PathParams
from repro.core.theorem import (
    equal_time_gap,
    exchange_argument_step,
    is_equal_time_optimal,
    linear_times,
    suboptimality_of,
)
from repro.units import MiB, gbps, us


def direct(pid, alpha, beta):
    return PathParams(path_id=pid, alpha1=alpha, beta1=beta)


def staged(pid, a1, b1, eps, a2, b2):
    return PathParams(
        path_id=pid, alpha1=a1, beta1=b1, epsilon=eps, alpha2=a2, beta2=b2
    )


BELUGA_LIKE = [
    direct("direct", 2.5 * us, gbps(46)),
    staged("gpu:2", 2.5 * us, gbps(46), 4 * us, 2.5 * us, gbps(46)),
    staged("gpu:3", 2.5 * us, gbps(46), 4 * us, 2.5 * us, gbps(46)),
    staged("host", 4 * us, gbps(11.5), 7 * us, 4 * us, gbps(11.5)),
]


class TestHockney:
    def test_time_and_bandwidth(self):
        m = HockneyModel(alpha=10 * us, beta=gbps(10))
        assert m.time(0) == 10 * us
        assert m.time(10 * MiB) == pytest.approx(10 * us + 10 * MiB / gbps(10))
        # bandwidth approaches beta for large n
        assert m.bandwidth(1 << 32) == pytest.approx(gbps(10), rel=0.01)

    def test_n_half(self):
        m = HockneyModel(alpha=10 * us, beta=gbps(10))
        n_half = m.n_half()
        assert m.bandwidth(n_half) == pytest.approx(gbps(10) / 2, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HockneyModel(-1, 1)
        with pytest.raises(ValueError):
            HockneyModel(1, 0)
        with pytest.raises(ValueError):
            HockneyModel(1, 1).time(-5)


class TestPathTime:
    def test_direct_matches_hockney(self):
        p = direct("d", 2 * us, gbps(10))
        assert path_time(p, 1.0, 8 * MiB) == pytest.approx(
            HockneyModel(2 * us, gbps(10)).time(8 * MiB)
        )

    def test_staged_adds_both_links(self):
        p = staged("s", 1 * us, gbps(10), 3 * us, 2 * us, gbps(20))
        n = 8 * MiB
        expected = 1 * us + n / gbps(10) + 3 * us + 2 * us + n / gbps(20)
        assert path_time(p, 1.0, n) == pytest.approx(expected)

    def test_zero_fraction_costs_nothing(self):
        assert path_time(BELUGA_LIKE[1], 0.0, 8 * MiB) == 0.0

    def test_fraction_scales_bandwidth_term_only(self):
        p = direct("d", 2 * us, gbps(10))
        n = 8 * MiB
        t_half = path_time(p, 0.5, n)
        assert t_half == pytest.approx(2 * us + 0.5 * n / gbps(10))

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            path_time(BELUGA_LIKE[0], 1.5, 100)


class TestValidateFractions:
    def test_valid(self):
        arr = validate_fractions([0.5, 0.25, 0.25])
        assert arr.sum() == pytest.approx(1.0)

    def test_sum_violation(self):
        with pytest.raises(ValueError, match="sum"):
            validate_fractions([0.5, 0.2])

    def test_range_violation(self):
        with pytest.raises(ValueError):
            validate_fractions([1.5, -0.5])


class TestMultiPathModel:
    def test_total_is_max(self):
        m = MultiPathModel(BELUGA_LIKE[:2])
        n = 64 * MiB
        times = m.path_times([0.7, 0.3], n)
        assert m.total_time([0.7, 0.3], n) == pytest.approx(times.max())

    def test_single_path_baseline(self):
        m = MultiPathModel(BELUGA_LIKE)
        n = 64 * MiB
        assert m.single_path_time(0, n) == pytest.approx(
            path_time(BELUGA_LIKE[0], 1.0, n)
        )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            MultiPathModel([BELUGA_LIKE[0], BELUGA_LIKE[0]])

    def test_mismatched_theta_length(self):
        m = MultiPathModel(BELUGA_LIKE[:2])
        with pytest.raises(ValueError):
            m.total_time([1.0], 100)


class TestSolveEqualTime:
    def test_two_identical_paths_split_evenly(self):
        om = np.array([1 / gbps(10), 1 / gbps(10)])
        de = np.array([2 * us, 2 * us])
        theta, t = solve_equal_time(om, de, 64 * MiB)
        assert theta == pytest.approx([0.5, 0.5])
        assert t == pytest.approx(2 * us + 32 * MiB / gbps(10))

    def test_bandwidth_proportional_for_zero_latency(self):
        om = np.array([1 / gbps(30), 1 / gbps(10)])
        de = np.zeros(2)
        theta, _ = solve_equal_time(om, de, 64 * MiB)
        assert theta == pytest.approx([0.75, 0.25])

    def test_equal_times_achieved(self):
        om = np.array([1 / gbps(46), 2 / gbps(46), 2 / gbps(11.5)])
        de = np.array([2.5 * us, 9 * us, 15 * us])
        n = 256 * MiB
        theta, t_star = solve_equal_time(om, de, n)
        times = theta * n * om + de
        assert np.allclose(times, t_star, rtol=1e-12)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            solve_equal_time(np.array([1.0]), np.array([0.0]), 0)


class TestOptimalFractions:
    def test_simplex_and_equal_time_large_message(self):
        sol = optimal_fractions(BELUGA_LIKE, 256 * MiB)
        assert sol.theta.sum() == pytest.approx(1.0)
        assert np.all(sol.theta >= 0)
        assert all(sol.active)
        assert is_equal_time_optimal(BELUGA_LIKE, sol.theta, 256 * MiB)

    def test_higher_bandwidth_gets_larger_share(self):
        # Direct (46 GB/s single link) vs host (11.5 both links):
        sol = optimal_fractions(BELUGA_LIKE, 256 * MiB)
        assert sol.theta[0] > sol.theta[3]

    def test_small_message_drops_slow_paths(self):
        sol = optimal_fractions(BELUGA_LIKE, 64 * 1024)  # 64 KiB
        # the host path's Delta (15us) dwarfs a 64KiB transfer => dropped
        assert sol.theta[3] == 0.0
        assert not sol.active[3]
        assert sol.theta.sum() == pytest.approx(1.0)

    def test_tiny_message_all_direct(self):
        sol = optimal_fractions(BELUGA_LIKE, 256)
        assert sol.theta[0] == pytest.approx(1.0)
        assert sol.num_active == 1

    def test_direct_protected_from_dropping(self):
        # Make direct terrible: tiny message where its alpha dominates.
        paths = [
            direct("direct", 100 * us, gbps(1)),
            direct("fast", 1 * us, gbps(50)),
        ]
        sol = optimal_fractions(paths, 1024, keep=0)
        assert sol.theta[0] > 0  # kept despite being bad

    def test_keep_none_allows_dropping_any(self):
        paths = [
            direct("slow", 100 * us, gbps(1)),
            direct("fast", 1 * us, gbps(50)),
        ]
        sol = optimal_fractions(paths, 1024, keep=None)
        assert sol.theta[0] == 0.0
        assert sol.theta[1] == pytest.approx(1.0)

    def test_explicit_omega_delta(self):
        sol = optimal_fractions(
            BELUGA_LIKE[:2],
            64 * MiB,
            omegas=[1 / gbps(46), 1 / gbps(46)],
            deltas=[0.0, 0.0],
        )
        assert sol.theta == pytest.approx([0.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_fractions([], 100)
        with pytest.raises(ValueError):
            optimal_fractions(BELUGA_LIKE, 0)
        with pytest.raises(ValueError):
            optimal_fractions(BELUGA_LIKE, 100, omegas=[1.0])
        with pytest.raises(ValueError):
            optimal_fractions(BELUGA_LIKE, 100, keep=10)

    def test_describe(self):
        sol = optimal_fractions(BELUGA_LIKE, 64 * MiB)
        text = sol.describe([p.path_id for p in BELUGA_LIKE])
        assert "direct" in text and "θ=" in text


class TestTheorem:
    def test_equal_time_gap_zero_at_optimum(self):
        sol = optimal_fractions(BELUGA_LIKE, 128 * MiB)
        gap = equal_time_gap(
            sol.theta, [p.Omega for p in BELUGA_LIKE],
            [p.Delta for p in BELUGA_LIKE], 128 * MiB,
        )
        assert gap < 1e-9

    def test_unequal_distribution_has_gap(self):
        gap = equal_time_gap(
            [0.97, 0.01, 0.01, 0.01],
            [p.Omega for p in BELUGA_LIKE],
            [p.Delta for p in BELUGA_LIKE],
            128 * MiB,
        )
        assert gap > 0.1

    def test_exchange_argument_improves(self):
        om = [p.Omega for p in BELUGA_LIKE]
        de = [p.Delta for p in BELUGA_LIKE]
        n = 128 * MiB
        theta = np.array([0.9, 0.05, 0.03, 0.02])
        new_theta, old_max, new_max = exchange_argument_step(theta, om, de, n)
        assert new_max < old_max
        assert new_theta.sum() == pytest.approx(1.0)

    def test_exchange_noop_at_optimum(self):
        sol = optimal_fractions(BELUGA_LIKE, 128 * MiB)
        om = [p.Omega for p in BELUGA_LIKE]
        de = [p.Delta for p in BELUGA_LIKE]
        _, old_max, new_max = exchange_argument_step(
            sol.theta, om, de, 128 * MiB
        )
        assert new_max == pytest.approx(old_max, rel=1e-9)

    @given(
        betas=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=5
        ),
        alphas=st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=5
        ),
        n_mib=st.integers(min_value=8, max_value=512),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_random_point_beats_closed_form(self, betas, alphas, n_mib, seed):
        """Theorem 1 as a property: T(random θ) >= T(θ*)."""
        p = min(len(betas), len(alphas))
        paths = [
            direct(f"p{i}", alphas[i] * us, gbps(betas[i])) for i in range(p)
        ]
        n = n_mib * MiB
        rng = np.random.default_rng(seed)
        raw = rng.random(p)
        theta = raw / raw.sum()
        assert suboptimality_of(paths, theta, n) >= 1 - 1e-9

    @given(
        n_mib=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=30, deadline=None)
    def test_fractions_always_on_simplex(self, n_mib):
        sol = optimal_fractions(BELUGA_LIKE, n_mib * MiB)
        assert sol.theta.sum() == pytest.approx(1.0)
        assert np.all(sol.theta >= 0)
        assert np.all(sol.theta <= 1 + 1e-12)

    def test_linear_times_shape(self):
        times = linear_times([0.5, 0.5], [1.0, 2.0], [0.0, 0.0], 10.0)
        assert times == pytest.approx([5.0, 10.0])


class TestEq8SpecialCase:
    """Eq. (11) with direct-path parameters must reduce to Eq. (8)."""

    def test_equivalence(self):
        paths = [
            direct("a", 2 * us, gbps(40)),
            direct("b", 3 * us, gbps(20)),
            direct("c", 5 * us, gbps(10)),
        ]
        n = 128 * MiB
        # Eq. (8) computed directly:
        betas = np.array([p.beta1 for p in paths])
        alphas = np.array([p.alpha1 for p in paths])
        beta_sum = betas.sum()
        ab_sum = (alphas * betas).sum()
        theta_eq8 = betas / beta_sum * (1 - alphas / n * beta_sum + ab_sum / n)
        # Library (general Eq. 11 path):
        sol = optimal_fractions(paths, n)
        assert sol.theta == pytest.approx(theta_eq8, rel=1e-12)
